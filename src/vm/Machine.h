//===- vm/Machine.h - The S-1/64 simulator ----------------------*- C++ -*-===//
///
/// \file
/// Executes assembled s1::Programs and provides the LISP runtime system:
/// the tagged heap, pointer certification (§6.3), the deep-binding special
/// stack (§4.4), catch/throw unwinding, and the generic-arithmetic and
/// list "SQ routines" compiled code calls into.
///
/// Two execution engines share one runtime-service layer:
///
///  * **Legacy** — the original interpretive switch over s1::Instruction,
///    decoding operand modes on every step. Kept as the semantic baseline
///    the pre-decoded engine is differentially tested against.
///  * **Threaded** (default) — executes the pre-decoded internal form
///    (vm/Predecode.h): labels stripped, branch targets resolved, operand
///    modes fused into specialized handlers, dispatched by computed goto
///    where the compiler supports it (portable switch fallback behind the
///    S1LISP_THREADED_DISPATCH CMake option).
///
/// Both engines retire **bit-identical architectural counters**
/// (Instructions, Movs, PerOpcode, SpecialSearchSteps, ...) — the
/// measurements behind every benchmark table in EXPERIMENTS.md — which is
/// asserted over fuzzed programs by tests/vm/EngineEquivalenceTest.
///
/// Special-variable lookups additionally go through a per-symbol shallow
/// cache over the deep-binding stack: hits skip the linear search but
/// charge SpecialSearchSteps exactly what the search would have cost, so
/// the §4.4 tables stay honest; the cache is invalidated on rebinding and
/// unwinding.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_VM_MACHINE_H
#define S1LISP_VM_MACHINE_H

#include "s1/Isa.h"
#include "sexpr/Value.h"
#include "vm/Predecode.h"

#include <array>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace s1lisp {
namespace vm {

/// Memory layout (word addresses).
constexpr uint64_t StaticBase = 16;
constexpr uint64_t SpecBase = 1ull << 19;   ///< deep-binding stack region
constexpr uint64_t StackBase = 1ull << 20;  ///< control/value stack (grows up)
constexpr uint64_t StackWords = 1ull << 20;
constexpr uint64_t HeapBase = StackBase + StackWords;
constexpr uint64_t HeapWords = 1ull << 22;
constexpr uint64_t MemoryWords = HeapBase + HeapWords;

inline bool isStackAddress(uint64_t Addr) {
  return Addr >= StackBase && Addr < StackBase + StackWords;
}

/// The simulated address space. calloc-backed rather than a zero-filled
/// std::vector so that constructing a Machine costs pages-touched, not a
/// ~50 MB memset — the differential fuzzer builds thousands of Machines
/// per run and only ever touches a sliver of each address space.
class AddressSpace {
public:
  explicit AddressSpace(size_t NWords)
      : Mem(static_cast<uint64_t *>(std::calloc(NWords, sizeof(uint64_t)))),
        NWords(Mem ? NWords : 0) {}

  uint64_t &operator[](size_t I) { return Mem.get()[I]; }
  const uint64_t &operator[](size_t I) const { return Mem.get()[I]; }
  size_t size() const { return NWords; }

private:
  struct FreeDeleter {
    void operator()(uint64_t *P) const { std::free(P); }
  };
  std::unique_ptr<uint64_t[], FreeDeleter> Mem;
  size_t NWords;
};

/// Execution counters.
struct MachineStats {
  uint64_t Instructions = 0;
  uint64_t Movs = 0;            ///< MOV opcodes retired (the §6.1 metric)
  uint64_t Calls = 0;
  uint64_t TailCalls = 0;
  uint64_t Syscalls = 0;
  uint64_t HeapObjects = 0;     ///< boxed objects allocated
  uint64_t HeapWordsUsed = 0;
  uint64_t StackHighWater = 0;  ///< max SP - StackBase
  uint64_t SpecialSearches = 0;
  uint64_t SpecialSearchSteps = 0;
  /// Deterministic GC counters (identical across engines; pause *timing*
  /// lives outside MachineStats, see Machine::gcPauseNs).
  uint64_t GcRuns = 0;
  uint64_t GcWordsReclaimed = 0;
  std::array<uint64_t, 64> PerOpcode{};
};

/// Which dispatch loop executes compiled code.
enum class Engine : uint8_t {
  Legacy,   ///< interpretive switch over s1::Instruction
  Threaded, ///< pre-decoded fused handlers (computed goto / dense switch)
  Native,   ///< template-JIT over the XInsn stream (x86-64 only; falls
            ///< back to Threaded elsewhere, see vm/Jit.h)
};

/// "legacy" / "threaded" / "native" -> Engine; nullopt for anything else.
std::optional<Engine> engineByName(std::string_view Name);
const char *engineName(Engine E);

class JitProgram;

/// The simulator. One instance owns one address space; reusable across
/// many calls into the same program.
class Machine {
public:
  Machine(const s1::Program &P, sexpr::SymbolTable &Syms, sexpr::Heap &DecodeHeap);

  struct RunResult {
    bool Ok = false;
    std::string Error;
    uint64_t ResultWord = s1::NilWord;
    /// Result decoded back to an S-expression when representable.
    std::optional<sexpr::Value> Result;
  };

  /// Calls the named compiled function with S-expression arguments.
  RunResult call(const std::string &Name, const std::vector<sexpr::Value> &Args);

  /// Establishes the global value of a special variable.
  bool setGlobalSpecial(const sexpr::Symbol *Name, sexpr::Value V);

  /// Creates a float array in the VM heap; returns its tagged word
  /// (pass it to call() via a pre-encoded argument).
  uint64_t makeArrayF(size_t Dim0, size_t Dim1 = 0);
  double readArrayF(uint64_t ArrayWord, size_t I, size_t J = 0);
  void writeArrayF(uint64_t ArrayWord, size_t I, size_t J, double V);

  /// Encodes an S-expression into VM memory (heap for composites).
  uint64_t encode(sexpr::Value V);
  /// Decodes a word back into an S-expression; nullopt for functions or
  /// malformed words.
  std::optional<sexpr::Value> decode(uint64_t Word, unsigned Depth = 64);

  MachineStats &stats() { return Stats; }
  void resetStats() { Stats = MachineStats(); }

  /// Retires the execution counters into the global stats registry
  /// (`vm.*` counters) so they appear alongside the per-phase compiler
  /// statistics in `--stats` reports. Adds the current counter values;
  /// callers normally publish once, after the runs they care about.
  void publishStats() const;

  /// Selects the dispatch loop. Threaded is the default; Legacy remains
  /// available as the differential baseline (tools expose --engine).
  void setEngine(Engine E) { Eng = E; }
  Engine engine() const { return Eng; }

  /// Gates the per-retired-instruction detail counters (the PerOpcode
  /// histogram and the MOV count). On by default; switching them off
  /// removes their cost from the hot loop entirely (the threaded engine
  /// compiles a counter-free instantiation of its dispatch loop).
  /// Instructions is always counted — it drives the fuel limit.
  void setDetailedStats(bool On) { DetailedStats = On; }
  bool detailedStats() const { return DetailedStats; }

  /// The pre-decoded form of the program, built lazily on first threaded
  /// run. Pass a shared decode in to amortize decoding across the many
  /// short-lived Machines a fuzzing sweep builds for one Program.
  void setDecodedProgram(std::shared_ptr<const DecodedProgram> DP) {
    Decoded = std::move(DP);
  }
  const std::shared_ptr<const DecodedProgram> &decodedProgram();

  void setFuel(uint64_t F) { Fuel = F; }
  const std::string &output() const { return Out; }
  void clearOutput() { Out.clear(); }

  /// GC schedule for the word heap: a mark-sweep collection is scheduled
  /// every \p N allocations (0 = never, the default) and runs at the next
  /// instruction boundary — never mid-syscall, so both engines collect at
  /// bit-identical points.
  void setGcEvery(uint64_t N) { GcInterval = N; }
  /// Live-heap budget in bytes; exceeding it schedules a collection.
  void setGcBudget(uint64_t Bytes) { GcBudgetWords = Bytes / sizeof(uint64_t); }
  bool gcEnabled() const { return GcInterval != 0 || GcBudgetWords != 0; }
  /// Wall-clock pause time — deliberately not in MachineStats, which only
  /// holds counters the engines must retire bit-identically.
  uint64_t gcPauseNs() const { return GcPauseNs; }
  uint64_t gcPauseNsMax() const { return GcPauseNsMax; }

private:
  struct CatchFrame {
    uint64_t TagWord;
    int Func;
    int Pc; ///< handler pc, in the executing engine's pc units
    uint64_t Sp, Fp, Env;
    size_t SpecDepth;
    size_t CatchDepth;
  };

  // Execution engines.
  bool run(int FuncIndex, std::string &Error);
  bool runLegacy(std::string &Error);
  bool step(std::string &Error);
  template <bool Detailed> bool runThreaded(std::string &Error);
  bool runNative(std::string &Error);
  uint64_t &mem(uint64_t Addr);
  uint64_t effectiveAddress(const s1::Operand &O);
  uint64_t read(const s1::Operand &O);
  void write(const s1::Operand &O, uint64_t V);
  uint64_t xea(const XMem &M);
  uint64_t xread(const XArg &A);
  void xwrite(const XArg &A, uint64_t V);
  bool trap(std::string &Error, const std::string &Msg);

  // Runtime services. Immediate operands and the resolved catch-handler
  // pc travel as arguments so both engines share one implementation.
  bool doSyscall(s1::Syscall S, int64_t SubCode, int64_t XImm, int HandlerPc,
                 std::string &Error);
  uint64_t pop();
  void push(uint64_t W);
  bool wordEql(uint64_t A, uint64_t B);
  uint64_t allocate(s1::Tag T, uint64_t NWords);
  uint64_t boxFlonum(double D);
  uint64_t certify(uint64_t W);
  uint64_t symbolWord(const sexpr::Symbol *S);
  uint64_t trueWord();

  /// Drops every shallow-cache entry whose binding lives at or above
  /// \p NewTop (called before the special stack pops back to NewTop).
  void invalidateSpecCacheAbove(uint64_t NewTop);

  // Word-heap mark-sweep collector. Roots are scanned conservatively
  // (tag + heap-range filter) from registers, the live stack extent, the
  // special stack, the static image, catch frames, symbol cells, and
  // host-pinned objects; tracing inside blocks is directed by the tag
  // recorded at allocation. Non-moving, so no read barriers are needed;
  // freed blocks go on exact-size LIFO free lists, which keeps reused
  // addresses deterministic across engines.
  void collectGarbage();
  void markWord(uint64_t W, std::vector<uint64_t> &Work);

  const s1::Program &P;
  sexpr::SymbolTable &Syms;
  sexpr::Heap &DecodeHeap;

  AddressSpace Memory{MemoryWords};
  std::array<uint64_t, s1::NumRegs> Regs{};
  int CurFunc = -1;
  int Pc = 0;
  uint64_t HeapTop = HeapBase;
  uint64_t SpecTop = SpecBase; ///< next free pair slot in the binding stack

  /// Native-tier cons fast-path telemetry, bumped from generated code
  /// (vm/Jit.cpp). Deliberately not part of MachineStats: the inline
  /// bump-allocation path only exists in the native engine, so these may
  /// differ across engines while MachineStats stays bit-identical.
  uint64_t JitConsHits = 0;
  uint64_t JitConsMisses = 0;

  std::vector<CatchFrame> Catches;
  std::unordered_map<const sexpr::Symbol *, uint64_t> SymbolAddr;
  std::unordered_map<uint64_t, const sexpr::Symbol *> AddrSymbol;
  std::unordered_map<uint64_t, std::string> StringContents;

  /// §4.4 shallow cache: symbol word -> value-cell address of its topmost
  /// deep binding (or its global cell when unbound on the stack).
  std::unordered_map<uint64_t, uint64_t> SpecCache;
  uint64_t CachedTWord = 0; ///< memoized symbolWord(t); 0 = not yet built

  Engine Eng = Engine::Threaded;
  bool DetailedStats = true;
  std::shared_ptr<const DecodedProgram> Decoded;

  // Native tier state (vm/Jit.h). The generated code reaches back into
  // the Machine through JitAccess, which needs the private members above.
  friend struct JitAccess;
  std::shared_ptr<const JitProgram> Jitted;
  const JitProgram *ActiveJit = nullptr;
  std::string NativeError; ///< syscall trap text staged by the JIT shim

  /// Live heap blocks by base address (only maintained when gcEnabled()):
  /// the tag decides which words are traced, interior pointers resolve by
  /// floor lookup.
  struct BlockInfo {
    s1::Tag T;
    uint32_t NWords;
    bool Marked;
  };
  std::map<uint64_t, BlockInfo> Blocks;
  /// Freed block addresses keyed by exact size, reused LIFO.
  std::map<uint64_t, std::vector<uint64_t>> FreeBySize;
  /// Words handed to the host (makeArrayF) — permanent roots.
  std::vector<uint64_t> HostPinned;
  uint64_t GcInterval = 0;    ///< collect every N allocations; 0 = never
  uint64_t GcBudgetWords = 0; ///< live-word budget; 0 = unbounded
  uint64_t AllocsSinceGc = 0;
  uint64_t LiveWords = 0;
  bool GcPending = false;
  uint64_t GcPauseNs = 0;
  uint64_t GcPauseNsMax = 0;

  MachineStats Stats;
  uint64_t Fuel = 500'000'000;
  std::string Out;
  bool Halted = false;
};

/// The sentinel stored in a symbol's value cell while it is globally unbound.
constexpr uint64_t UnboundWord = ~0ull;

} // namespace vm
} // namespace s1lisp

#endif // S1LISP_VM_MACHINE_H
