//===- vm/Jit.h - Native execution tier (block compiler) --------*- C++ -*-===//
///
/// \file
/// Translates a pre-decoded program (vm/Predecode.h) into executable
/// x86-64 by compiling whole basic blocks (Predecode's Leaders metadata)
/// into a contiguous W^X buffer with direct rel32 jumps for every resolved
/// branch target. Hot handlers (MOV/PUSH/POP/ALU/JMPZ/CALL/RET/tail calls
/// and the fixnum fast paths of the generic-arithmetic/compare/predicate
/// syscalls, plus an inline bump-allocating CONS) are emitted inline; cold
/// handlers and the full runtime-service layer fall back to calls into the
/// existing C++ implementations, so there is exactly one copy of the
/// semantics that matters.
///
/// Block-scoped optimizations (details atop vm/Jit.cpp):
///
///  * safepoint batching — the per-instruction fuel/GC/counter work is
///    hoisted into one bulk check at block entry; an unbatched fallback
///    body and exact-state trap stubs keep every trap message, pc, and
///    MachineStats counter byte-identical to the threaded engine;
///  * a write-through virtual operand stack — the top of the VM stack
///    rides in host registers across instruction boundaries, with
///    Regs[SP]/StackHighWater updates deferred to block exits and shims;
///  * compare+branch fusion — GenericCompare/GenericNumPred feeding
///    `JmpzRK RV,0` retire as a single test+jcc pair.
///
/// Boundary safepoints reproduce the threaded loop's trap ordering
/// bit-exactly: fuel first, then the pending-GC check (compiled out when
/// no GC schedule is set — GcPending can only be raised by the allocator,
/// and allocating instructions always terminate a block). The threaded
/// engine therefore remains a differential oracle for the native tier:
/// values, error classes, and every architectural MachineStats counter
/// must match bit-identically.
///
/// Buffer lifecycle: code is emitted into ordinary memory, then copied
/// into a fresh anonymous mmap that is made PROT_READ|PROT_EXEC (never
/// writable and executable at once). A JitProgram is immutable after
/// construction and shared_ptr-shareable across Machines, exactly like
/// DecodedProgram. On non-x86-64 hosts compileJit() returns nullptr and
/// the Machine falls back to the threaded engine with a loud remark.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_VM_JIT_H
#define S1LISP_VM_JIT_H

#include "vm/Predecode.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace s1lisp {
namespace vm {

class Machine;

/// True when this build can emit and run native code (x86-64 hosts).
bool jitAvailable();

/// Flags baked into the emitted code. Both mirror Machine switches that
/// the threaded loop also specializes on.
struct JitOptions {
  bool DetailedStats = true;
  bool GcEnabled = false;
};

/// Exit statuses the generated code returns to Machine::runNative, which
/// maps each onto the exact trap message the threaded engine would have
/// produced at the same instruction boundary.
enum class JitStatus : int {
  Ok = 0,      ///< RET popped the host sentinel
  Fuel,        ///< Stats.Instructions reached the fuel limit
  HaltedMem,   ///< memory fault / halted flag observed at a boundary
  StackOv,     ///< PUSH/CALL stack-overflow guard
  Div0,        ///< integer division by zero
  SyscallErr,  ///< doSyscall trapped; Machine::NativeError holds the text
  Halt,        ///< HALT retired
  PcRange,     ///< control fell off the end of a function
  TailOv,      ///< tail call passes more arguments than the frame holds
  HeapExh,     ///< ALLOC exhausted the word heap
  NotFunc,     ///< CALLPTR/TAILCALLPTR through a non-Function word
  FixOv,       ///< inline fixnum fast path overflowed 32 bits
};

/// One program compiled to native code. Immutable; share freely. Keeps
/// the DecodedProgram it was built from alive (templates hold pointers to
/// its XInsns for the cold-handler and syscall fallbacks).
class JitProgram {
public:
  JitProgram() = default;
  ~JitProgram();
  JitProgram(const JitProgram &) = delete;
  JitProgram &operator=(const JitProgram &) = delete;

  bool matches(bool Detailed, bool GcEnabled) const {
    return Detailed == DetailedOn && GcEnabled == GcOn;
  }

  /// True when this code was emitted from exactly \p P (guards against a
  /// Machine whose decoded program was swapped after compilation).
  bool builtFrom(const DecodedProgram *P) const { return DP.get() == P; }

  /// Native address of decoded instruction \p Pc of function \p Func
  /// (Pc == code size resolves to the pc-out-of-range trailer).
  const void *addr(int Func, int Pc) const;

  /// Runs generated code starting at \p Start; returns a JitStatus value.
  /// \p Instructions seeds the retired count kept in a host register; the
  /// final value is written back to Machine::Stats by the epilogue.
  int invoke(uint64_t *Regs, uint64_t *Memory, Machine *M,
             uint64_t Instructions, uint64_t Fuel, const void *Start) const;

private:
  friend struct JitAccess;

  std::shared_ptr<const DecodedProgram> DP;
  uint8_t *Base = nullptr; ///< RX mapping; nullptr until finalized
  size_t MapLen = 0;
  size_t EntryOff = 0;
  bool DetailedOn = true;
  bool GcOn = false;
  /// Per function, per decoded index (plus the fall-off trailer), the
  /// byte offset of that instruction's template.
  std::vector<std::vector<uint32_t>> Offs;
  /// Materialized address tables, indexed by the emitted code for RET and
  /// indirect calls: FuncTable[f][pc] -> native address.
  std::vector<std::unique_ptr<const uint8_t *[]>> AddrArrays;
  std::vector<const uint8_t **> FuncTable;
};

/// Compiles \p DP. \p Layout is any Machine instance — used only to
/// compute member offsets baked into the generated code. Returns nullptr
/// when the tier is unavailable (non-x86-64 build, mmap failure).
std::shared_ptr<const JitProgram>
compileJit(std::shared_ptr<const DecodedProgram> DP, const JitOptions &Opts,
           Machine &Layout);

} // namespace vm
} // namespace s1lisp

#endif // S1LISP_VM_JIT_H
