//===- vm/Machine.cpp -----------------------------------------------------===//

#include "vm/Machine.h"

#include "sexpr/Numbers.h"
#include "vm/Jit.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

S1_STAT(VmInstructions, "vm.instructions", "instructions retired");
S1_STAT(VmMovs, "vm.movs", "MOV opcodes retired (the 6.1 metric)");
S1_STAT(VmCalls, "vm.calls", "function calls executed");
S1_STAT(VmTailCalls, "vm.tailcalls", "tail calls executed as jumps");
S1_STAT(VmSyscalls, "vm.syscalls", "runtime (SQ routine) calls");
S1_STAT(VmHeapObjects, "vm.heap.objects", "boxed objects allocated");
S1_STAT(VmHeapWords, "vm.heap.words", "heap words allocated");
S1_STAT(VmStackHighWater, "vm.stack.highwater", "max stack depth in words");
S1_STAT(VmSpecialSearches, "vm.special.searches",
        "deep-binding stack searches");
S1_STAT(VmSpecialSearchSteps, "vm.special.searchsteps",
        "bindings scanned during searches");
S1_STAT(VmGcRuns, "vm.gc.runs", "word-heap collections");
S1_STAT(VmGcWordsReclaimed, "vm.gc.words.reclaimed",
        "heap words reclaimed by the collector");
S1_STAT(VmGcPauseNs, "vm.gc.pause.ns", "total collection pause nanoseconds");
S1_STAT(VmJitConsHits, "jit.cons.fast.hits",
        "cons cells bump-allocated by the native tier's inline fast path");
S1_STAT(VmJitConsMisses, "jit.cons.fast.misses",
        "cons allocations that fell back to the C++ allocator");

// Computed-goto dispatch needs the GNU labels-as-values extension; fall
// back to a dense switch elsewhere or when disabled via CMake.
#if defined(S1LISP_THREADED_DISPATCH) && S1LISP_THREADED_DISPATCH && \
    (defined(__GNUC__) || defined(__clang__))
#define S1_COMPUTED_GOTO 1
#else
#define S1_COMPUTED_GOTO 0
#endif

using namespace s1lisp;
using namespace s1lisp::vm;
using namespace s1lisp::s1;
using sexpr::Value;

namespace {

double asDouble(uint64_t W) {
  double D;
  std::memcpy(&D, &W, sizeof(D));
  return D;
}

uint64_t fromDouble(double D) {
  uint64_t W;
  std::memcpy(&W, &D, sizeof(W));
  return W;
}

/// Return-address words: ((func+1) << 32) | pc, stored raw. Zero is the
/// "return to host" sentinel. The pc half is in the executing engine's
/// units (original index / decoded index); an engine only ever consumes
/// return words it pushed itself, since the engine is fixed per call().
uint64_t makeRetWord(int Func, int Pc) {
  return (static_cast<uint64_t>(Func + 1) << 32) | static_cast<uint32_t>(Pc);
}

bool condHolds(Cond C, int64_t Sign) {
  switch (C) {
  case Cond::EQ:
    return Sign == 0;
  case Cond::NEQ:
    return Sign != 0;
  case Cond::LT:
    return Sign < 0;
  case Cond::GT:
    return Sign > 0;
  case Cond::LE:
    return Sign <= 0;
  case Cond::GE:
    return Sign >= 0;
  }
  return false;
}

} // namespace

std::optional<Engine> vm::engineByName(std::string_view Name) {
  if (Name == "legacy")
    return Engine::Legacy;
  if (Name == "threaded")
    return Engine::Threaded;
  if (Name == "native")
    return Engine::Native;
  return std::nullopt;
}

const char *vm::engineName(Engine E) {
  switch (E) {
  case Engine::Legacy:
    return "legacy";
  case Engine::Native:
    return "native";
  default:
    return "threaded";
  }
}

Machine::Machine(const Program &P, sexpr::SymbolTable &Syms,
                 sexpr::Heap &DecodeHeap)
    : P(P), Syms(Syms), DecodeHeap(DecodeHeap) {
  // Load the static image (the rest of the address space starts zeroed).
  for (size_t I = 0; I < P.Static.size(); ++I)
    Memory[StaticBase + I] = P.Static[I];
  SymbolAddr = P.SymbolAddr;
  for (auto &[Sym, Addr] : P.SymbolAddr)
    AddrSymbol[Addr] = Sym;
  for (auto &[Addr, Str] : P.StringAddr)
    StringContents[Addr] = Str;
}

const std::shared_ptr<const DecodedProgram> &Machine::decodedProgram() {
  if (!Decoded)
    Decoded = predecode(P);
  return Decoded;
}

uint64_t &Machine::mem(uint64_t Addr) {
  static uint64_t Garbage = 0;
  if (Addr >= Memory.size()) {
    Halted = true; // the dispatch loop reports the trap
    return Garbage;
  }
  return Memory[Addr];
}

uint64_t Machine::symbolWord(const sexpr::Symbol *S) {
  auto It = SymbolAddr.find(S);
  if (It != SymbolAddr.end())
    return makePointer(Tag::Symbol, It->second);
  // Symbols unknown to the compiled image get a fresh heap cell.
  uint64_t W = allocate(Tag::Symbol, 1);
  mem(addrOf(W)) = UnboundWord;
  SymbolAddr[S] = addrOf(W);
  AddrSymbol[addrOf(W)] = S;
  return W;
}

uint64_t Machine::trueWord() {
  if (!CachedTWord)
    CachedTWord = symbolWord(Syms.t());
  return CachedTWord;
}

uint64_t Machine::allocate(Tag T, uint64_t NWords) {
  if (gcEnabled()) {
    if (GcInterval && ++AllocsSinceGc >= GcInterval)
      GcPending = true;
    // Exact-size LIFO reuse keeps addresses deterministic across engines.
    auto FIt = FreeBySize.find(NWords);
    uint64_t Addr;
    if (FIt != FreeBySize.end() && !FIt->second.empty()) {
      Addr = FIt->second.back();
      FIt->second.pop_back();
      for (uint64_t J = 0; J < NWords; ++J)
        Memory[Addr + J] = 0;
    } else {
      if (HeapTop + NWords > HeapBase + HeapWords) {
        Halted = true;
        return NilWord;
      }
      Addr = HeapTop;
      HeapTop += NWords;
    }
    Blocks[Addr] = BlockInfo{T, static_cast<uint32_t>(NWords), false};
    LiveWords += NWords;
    if (GcBudgetWords && LiveWords >= GcBudgetWords)
      GcPending = true;
    ++Stats.HeapObjects;
    Stats.HeapWordsUsed += NWords;
    return makePointer(T, Addr);
  }
  if (HeapTop + NWords > HeapBase + HeapWords) {
    Halted = true;
    return NilWord;
  }
  uint64_t Addr = HeapTop;
  HeapTop += NWords;
  ++Stats.HeapObjects;
  Stats.HeapWordsUsed += NWords;
  return makePointer(T, Addr);
}

void Machine::markWord(uint64_t W, std::vector<uint64_t> &Work) {
  Tag T = tagOf(W);
  if (T == Tag::Nil || T == Tag::Fixnum ||
      static_cast<uint8_t>(T) > static_cast<uint8_t>(Tag::Environment))
    return;
  uint64_t A = addrOf(W);
  if (A < HeapBase || A >= HeapTop)
    return;
  // Floor lookup: certified (§6.3) and otherwise derived pointers may be
  // interior to their block.
  auto It = Blocks.upper_bound(A);
  if (It == Blocks.begin())
    return;
  --It;
  if (A >= It->first + It->second.NWords || It->second.Marked)
    return;
  It->second.Marked = true;
  Work.push_back(It->first);
}

void Machine::collectGarbage() {
  auto T0 = std::chrono::steady_clock::now();
  GcPending = false;
  AllocsSinceGc = 0;

  std::vector<uint64_t> Work;
  // Conservative root scan: any word whose tag and address shape say
  // "heap object" pins its block. False positives only delay reclamation;
  // they never corrupt, because nothing moves.
  for (uint64_t R : Regs)
    markWord(R, Work);
  for (uint64_t A = StackBase; A < Regs[SP]; ++A)
    markWord(Memory[A], Work);
  for (uint64_t A = SpecBase; A < SpecTop; ++A)
    markWord(Memory[A], Work);
  for (uint64_t A = StaticBase; A < StaticBase + P.Static.size(); ++A)
    markWord(Memory[A], Work);
  for (const CatchFrame &C : Catches) {
    markWord(C.TagWord, Work);
    markWord(C.Env, Work);
  }
  // Symbol cells are addressable through the C++ symbol registry, so
  // heap-resident cells are permanent roots (their value word is traced).
  for (const auto &[Sym, Addr] : SymbolAddr)
    if (Addr >= HeapBase)
      markWord(makePointer(Tag::Symbol, Addr), Work);
  for (uint64_t W : HostPinned)
    markWord(W, Work);
  markWord(CachedTWord, Work);

  while (!Work.empty()) {
    uint64_t A = Work.back();
    Work.pop_back();
    const BlockInfo &B = Blocks.find(A)->second;
    switch (B.T) {
    case Tag::Cons:
    case Tag::Symbol:
    case Tag::Function:
    case Tag::Environment:
      for (uint32_t J = 0; J < B.NWords; ++J)
        markWord(Memory[A + J], Work);
      break;
    default:
      // Raw payloads (flonums, ratios, strings, float arrays): their bit
      // patterns must not be misread as pointers.
      break;
    }
  }

  uint64_t Reclaimed = 0;
  for (auto It = Blocks.begin(); It != Blocks.end();) {
    if (It->second.Marked) {
      It->second.Marked = false;
      ++It;
      continue;
    }
    if (It->second.T == Tag::String)
      StringContents.erase(It->first);
    FreeBySize[It->second.NWords].push_back(It->first);
    Reclaimed += It->second.NWords;
    It = Blocks.erase(It);
  }
  LiveWords -= Reclaimed;
  ++Stats.GcRuns;
  Stats.GcWordsReclaimed += Reclaimed;
  uint64_t Ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  GcPauseNs += Ns;
  GcPauseNsMax = std::max(GcPauseNsMax, Ns);
}

uint64_t Machine::boxFlonum(double D) {
  uint64_t W = allocate(Tag::SingleFlonum, 1);
  mem(addrOf(W)) = fromDouble(D);
  return W;
}

uint64_t Machine::encode(Value V) {
  switch (V.kind()) {
  case sexpr::ValueKind::Nil:
    return NilWord;
  case sexpr::ValueKind::Fixnum:
    assert(V.fixnum() >= INT32_MIN && V.fixnum() <= INT32_MAX &&
           "compiled fixnums are 32-bit immediates");
    return makeFixnum(V.fixnum());
  case sexpr::ValueKind::Flonum:
    return boxFlonum(V.flonum());
  case sexpr::ValueKind::Symbol:
    return symbolWord(V.symbol());
  case sexpr::ValueKind::Ratio: {
    uint64_t W = allocate(Tag::Ratio, 2);
    mem(addrOf(W)) = static_cast<uint64_t>(V.ratio().Num);
    mem(addrOf(W) + 1) = static_cast<uint64_t>(V.ratio().Den);
    return W;
  }
  case sexpr::ValueKind::String: {
    uint64_t W = allocate(Tag::String, 1);
    mem(addrOf(W)) = V.stringValue().size();
    StringContents[addrOf(W)] = V.stringValue();
    return W;
  }
  case sexpr::ValueKind::Cons: {
    uint64_t Car = encode(V.car());
    uint64_t Cdr = encode(V.cdr());
    uint64_t W = allocate(Tag::Cons, 2);
    mem(addrOf(W)) = Car;
    mem(addrOf(W) + 1) = Cdr;
    return W;
  }
  }
  return NilWord;
}

std::optional<Value> Machine::decode(uint64_t Word, unsigned Depth) {
  if (Depth == 0)
    return std::nullopt;
  switch (tagOf(Word)) {
  case Tag::Nil:
    return Value::nil();
  case Tag::Fixnum:
    return Value::fixnum(fixnumValue(Word));
  case Tag::SingleFlonum:
    return Value::flonum(asDouble(Memory[addrOf(Word)]));
  case Tag::Symbol: {
    auto It = AddrSymbol.find(addrOf(Word));
    if (It == AddrSymbol.end())
      return std::nullopt;
    return Value::symbol(It->second);
  }
  case Tag::Ratio:
    return DecodeHeap.makeRatio(static_cast<int64_t>(Memory[addrOf(Word)]),
                                static_cast<int64_t>(Memory[addrOf(Word) + 1]));
  case Tag::String: {
    auto It = StringContents.find(addrOf(Word));
    if (It == StringContents.end())
      return std::nullopt;
    return DecodeHeap.string(It->second);
  }
  case Tag::Cons: {
    auto Car = decode(Memory[addrOf(Word)], Depth - 1);
    if (!Car)
      return std::nullopt;
    // Decoding the cdr can collect the decode heap and move *Car; pin it.
    // Rooting is gated like Heap::list: the shadow stack is single-mutator
    // state, and GC-free decode heaps are shared across fuzzing threads.
    sexpr::Heap::RootScope Guard(DecodeHeap);
    if (DecodeHeap.gcEnabled())
      Guard.add(&*Car);
    auto Cdr = decode(Memory[addrOf(Word) + 1], Depth - 1);
    if (!Cdr)
      return std::nullopt;
    return DecodeHeap.cons(*Car, *Cdr);
  }
  default:
    return std::nullopt;
  }
}

bool Machine::setGlobalSpecial(const sexpr::Symbol *Name, Value V) {
  uint64_t SymW = symbolWord(Name);
  mem(addrOf(SymW)) = encode(V);
  return true;
}

uint64_t Machine::makeArrayF(size_t Dim0, size_t Dim1) {
  bool Rank2 = Dim1 != 0;
  size_t D1 = Rank2 ? Dim1 : 1;
  uint64_t W = allocate(Tag::ArrayF, 3 + Dim0 * D1);
  mem(addrOf(W)) = Dim0;
  mem(addrOf(W) + 1) = D1;
  mem(addrOf(W) + 2) = Rank2;
  for (size_t I = 0; I < Dim0 * D1; ++I)
    mem(addrOf(W) + 3 + I) = fromDouble(0.0);
  // The host holds this word outside the scanned address space.
  HostPinned.push_back(W);
  return W;
}

double Machine::readArrayF(uint64_t ArrayWord, size_t I, size_t J) {
  uint64_t Base = addrOf(ArrayWord);
  return asDouble(Memory[Base + 3 + I * Memory[Base + 1] + J]);
}

void Machine::writeArrayF(uint64_t ArrayWord, size_t I, size_t J, double V) {
  uint64_t Base = addrOf(ArrayWord);
  Memory[Base + 3 + I * Memory[Base + 1] + J] = fromDouble(V);
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Machine::publishStats() const {
  VmInstructions += Stats.Instructions;
  VmMovs += Stats.Movs;
  VmCalls += Stats.Calls;
  VmTailCalls += Stats.TailCalls;
  VmSyscalls += Stats.Syscalls;
  VmHeapObjects += Stats.HeapObjects;
  VmHeapWords += Stats.HeapWordsUsed;
  VmStackHighWater.updateMax(Stats.StackHighWater);
  VmSpecialSearches += Stats.SpecialSearches;
  VmSpecialSearchSteps += Stats.SpecialSearchSteps;
  VmGcRuns += Stats.GcRuns;
  VmGcWordsReclaimed += Stats.GcWordsReclaimed;
  VmGcPauseNs += GcPauseNs;
  VmJitConsHits += JitConsHits;
  VmJitConsMisses += JitConsMisses;
}

Machine::RunResult Machine::call(const std::string &Name,
                                 const std::vector<Value> &Args) {
  stats::PhaseTimer Timer("vm.run");
  RunResult R;
  int Idx = P.indexOf(Name);
  if (Idx < 0) {
    R.Error = "undefined compiled function '" + Name + "'";
    return R;
  }
  Regs.fill(0);
  Regs[SP] = StackBase;
  Regs[FP] = StackBase;
  Regs[ENV] = NilWord;
  SpecTop = SpecBase;
  SpecCache.clear();
  Catches.clear();
  Halted = false;

  for (Value A : Args)
    push(encode(A));
  Regs[RTA] = Args.size();
  push(makeRetWord(-1, 0)); // sentinel: return to host

  std::string Error;
  if (!run(Idx, Error)) {
    R.Error = Error;
    return R;
  }
  R.Ok = true;
  R.ResultWord = Regs[RV];
  R.Result = decode(Regs[RV]);
  return R;
}

void Machine::push(uint64_t W) {
  mem(Regs[SP]) = W;
  ++Regs[SP];
  Stats.StackHighWater = std::max(Stats.StackHighWater, Regs[SP] - StackBase);
}

uint64_t Machine::pop() {
  --Regs[SP];
  return mem(Regs[SP]);
}

bool Machine::trap(std::string &Error, const std::string &Msg) {
  Error = Msg;
  if (CurFunc >= 0 && CurFunc < static_cast<int>(P.Functions.size())) {
    int ShowPc = Pc;
    // The threaded and native engines count pcs in decoded units; report
    // them in original assembly-listing units like the legacy engine does.
    if (Eng != Engine::Legacy && Decoded) {
      const DecodedFunction &DF = Decoded->Functions[CurFunc];
      if (Pc > 0 && Pc <= static_cast<int>(DF.OrigPc.size()))
        ShowPc = DF.OrigPc[Pc - 1] + 1;
      else if (Pc > static_cast<int>(DF.OrigPc.size()))
        ShowPc = static_cast<int>(P.Functions[CurFunc].Code.size());
    }
    Error += " [in " + P.Functions[CurFunc].Name + " at pc " +
             std::to_string(ShowPc) + "]";
  }
  Halted = true;
  return false;
}

bool Machine::run(int FuncIndex, std::string &Error) {
  CurFunc = FuncIndex;
  Pc = 0;
  if (Eng == Engine::Native) {
    decodedProgram();
    return runNative(Error);
  }
  if (Eng == Engine::Threaded) {
    decodedProgram(); // build lazily if no shared decode was injected
    return DetailedStats ? runThreaded<true>(Error) : runThreaded<false>(Error);
  }
  return runLegacy(Error);
}

bool Machine::runNative(std::string &Error) {
  if (!Jitted || !Jitted->matches(DetailedStats, gcEnabled()) ||
      !Jitted->builtFrom(Decoded.get()))
    Jitted = compileJit(Decoded, {DetailedStats, gcEnabled()}, *this);
  if (!Jitted) {
    static bool Warned = false;
    if (!Warned) {
      Warned = true;
      std::fprintf(stderr,
                   "s1lisp: warning: --engine=native is unavailable on this "
                   "host (requires x86-64); falling back to the threaded "
                   "engine\n");
    }
    return DetailedStats ? runThreaded<true>(Error) : runThreaded<false>(Error);
  }

  ActiveJit = Jitted.get();
  int St = Jitted->invoke(Regs.data(), &Memory[0], this, Stats.Instructions,
                          Fuel, Jitted->addr(CurFunc, Pc));
  ActiveJit = nullptr;

  switch (static_cast<JitStatus>(St)) {
  case JitStatus::Ok:
    CurFunc = -1; // back to host
    Pc = 0;
    return true;
  case JitStatus::Fuel:
    return trap(Error, "instruction fuel exhausted");
  case JitStatus::HaltedMem:
    return trap(Error,
                "machine halted unexpectedly (memory fault or heap full)");
  case JitStatus::StackOv:
    return trap(Error, "stack overflow");
  case JitStatus::Div0:
    return trap(Error, rtErrorMessage(RtError::DivisionByZero));
  case JitStatus::SyscallErr:
    // doSyscall already formatted the trap (with location) and halted.
    Error = std::move(NativeError);
    NativeError.clear();
    return false;
  case JitStatus::Halt:
    return trap(Error, "HALT executed");
  case JitStatus::PcRange:
    return trap(Error, "pc out of range");
  case JitStatus::TailOv:
    return trap(Error, "tail call passes more arguments than the frame holds");
  case JitStatus::HeapExh:
    return trap(Error, "heap exhausted");
  case JitStatus::NotFunc:
    return trap(Error, rtErrorMessage(RtError::NotAFunction));
  case JitStatus::FixOv:
    return trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
  }
  return trap(Error, "native engine returned an unknown status");
}

bool Machine::runLegacy(std::string &Error) {
  while (!Halted) {
    if (Stats.Instructions >= Fuel)
      return trap(Error, "instruction fuel exhausted");
    // Scheduled collections run only at instruction boundaries — mirrored
    // exactly in the threaded loop so both engines collect at identical
    // retirement points.
    if (GcPending)
      collectGarbage();
    if (!step(Error))
      return false;
    if (CurFunc == -1)
      return true; // returned to host
  }
  return trap(Error, "machine halted unexpectedly (memory fault or heap full)");
}

uint64_t Machine::effectiveAddress(const Operand &O) {
  assert(O.M == Operand::Mode::Mem && "EA of a non-memory operand");
  uint64_t Base = addrOf(Regs[O.R]);
  int64_t Idx = 0;
  if (O.Index != 0xFF)
    Idx = static_cast<int64_t>(Regs[O.Index]) << O.Scale;
  return Base + static_cast<uint64_t>(O.Imm + Idx);
}

uint64_t Machine::read(const Operand &O) {
  switch (O.M) {
  case Operand::Mode::Reg:
    return Regs[O.R];
  case Operand::Mode::Imm:
    return static_cast<uint64_t>(O.Imm);
  case Operand::Mode::FImm:
    return fromDouble(O.F);
  case Operand::Mode::Mem:
    return mem(effectiveAddress(O));
  default:
    assert(false && "unreadable operand");
    return 0;
  }
}

void Machine::write(const Operand &O, uint64_t V) {
  switch (O.M) {
  case Operand::Mode::Reg:
    Regs[O.R] = V;
    return;
  case Operand::Mode::Mem:
    mem(effectiveAddress(O)) = V;
    return;
  default:
    assert(false && "unwritable operand");
  }
}

bool Machine::step(std::string &Error) {
  const AsmFunction &F = P.Functions[CurFunc];
  // LABELs are pseudo-ops: branches land on them, but they retire no
  // instruction (and cost no fuel) — skip before fetching, exactly as the
  // pre-decode pass strips them for the threaded engine.
  while (Pc >= 0 && Pc < static_cast<int>(F.Code.size()) &&
         F.Code[Pc].Op == Opcode::LABEL)
    ++Pc;
  if (Pc < 0 || Pc >= static_cast<int>(F.Code.size()))
    return trap(Error, "pc out of range");
  const Instruction &I = F.Code[Pc++];
  ++Stats.Instructions;
  if (DetailedStats)
    ++Stats.PerOpcode[static_cast<size_t>(I.Op)];

  switch (I.Op) {
  case Opcode::LABEL: // unreachable: skipped before fetch
    return trap(Error, "LABEL retired as an instruction");
  case Opcode::HALT:
    return trap(Error, "HALT executed");

  case Opcode::MOV:
    if (DetailedStats)
      ++Stats.Movs;
    write(I.A, read(I.B));
    return true;

  case Opcode::MOVTAG: {
    uint64_t Addr = I.B.M == Operand::Mode::Mem ? effectiveAddress(I.B)
                                                : addrOf(read(I.B));
    write(I.A, makePointer(static_cast<Tag>(I.X.Imm), Addr));
    return true;
  }

  case Opcode::GETTAG:
    write(I.A, static_cast<uint64_t>(tagOf(read(I.B))));
    return true;

  case Opcode::LEA:
    write(I.A, effectiveAddress(I.B));
    return true;

  case Opcode::PUSH:
    if (Regs[SP] + 1 >= StackBase + StackWords)
      return trap(Error, "stack overflow");
    push(read(I.A));
    return true;

  case Opcode::POP:
    write(I.A, pop());
    return true;

  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::MULT:
  case Opcode::DIV: {
    bool TwoOp = I.X.M == Operand::Mode::None;
    int64_t A = static_cast<int64_t>(read(TwoOp ? I.A : I.B));
    int64_t B = static_cast<int64_t>(read(TwoOp ? I.B : I.X));
    int64_t R;
    switch (I.Op) {
    case Opcode::ADD:
      R = A + B;
      break;
    case Opcode::SUB:
      R = A - B;
      break;
    case Opcode::MULT:
      R = A * B;
      break;
    default:
      if (B == 0)
        return trap(Error, rtErrorMessage(RtError::DivisionByZero));
      R = A / B;
      break;
    }
    write(I.A, static_cast<uint64_t>(R));
    return true;
  }

  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMULT:
  case Opcode::FDIV:
  case Opcode::FMAX:
  case Opcode::FMIN: {
    bool TwoOp = I.X.M == Operand::Mode::None;
    double A = asDouble(read(TwoOp ? I.A : I.B));
    double B = asDouble(read(TwoOp ? I.B : I.X));
    double R;
    switch (I.Op) {
    case Opcode::FADD:
      R = A + B;
      break;
    case Opcode::FSUB:
      R = A - B;
      break;
    case Opcode::FMULT:
      R = A * B;
      break;
    case Opcode::FDIV:
      R = A / B;
      break;
    case Opcode::FMAX:
      R = std::max(A, B);
      break;
    default:
      R = std::min(A, B);
      break;
    }
    write(I.A, fromDouble(R));
    return true;
  }

  case Opcode::FNEG:
  case Opcode::FABS:
  case Opcode::FSQRT:
  case Opcode::FSIN:
  case Opcode::FCOS:
  case Opcode::FEXP:
  case Opcode::FLOG: {
    double X = asDouble(read(I.B));
    double R;
    switch (I.Op) {
    case Opcode::FNEG:
      R = -X;
      break;
    case Opcode::FABS:
      R = std::fabs(X);
      break;
    case Opcode::FSQRT:
      R = std::sqrt(X);
      break;
    case Opcode::FSIN:
      R = std::sin(X * 2.0 * M_PI); // the S-1 trig unit takes cycles
      break;
    case Opcode::FCOS:
      R = std::cos(X * 2.0 * M_PI);
      break;
    case Opcode::FEXP:
      R = std::exp(X);
      break;
    default:
      R = std::log(X);
      break;
    }
    write(I.A, fromDouble(R));
    return true;
  }

  case Opcode::FATAN: {
    double Y = asDouble(read(I.B));
    double X = asDouble(read(I.X));
    write(I.A, fromDouble(std::atan2(Y, X)));
    return true;
  }

  case Opcode::ITOF:
    write(I.A, fromDouble(static_cast<double>(static_cast<int64_t>(read(I.B)))));
    return true;
  case Opcode::FTOI:
    write(I.A, static_cast<uint64_t>(static_cast<int64_t>(asDouble(read(I.B)))));
    return true;

  case Opcode::JMPA:
    Pc = F.LabelPos[I.A.Label];
    return true;

  case Opcode::JMPZ: {
    int64_t A = static_cast<int64_t>(read(I.A));
    int64_t B = static_cast<int64_t>(read(I.B));
    int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
    if (condHolds(I.C, Sign))
      Pc = F.LabelPos[I.X.Label];
    return true;
  }

  case Opcode::FJMPZ: {
    double A = asDouble(read(I.A));
    double B = asDouble(read(I.B));
    int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
    if ((std::isnan(A) || std::isnan(B)) ? I.C == Cond::NEQ : condHolds(I.C, Sign))
      Pc = F.LabelPos[I.X.Label];
    return true;
  }

  case Opcode::CALL: {
    ++Stats.Calls;
    if (Regs[SP] + 4 >= StackBase + StackWords)
      return trap(Error, "stack overflow");
    push(makeRetWord(CurFunc, Pc));
    CurFunc = static_cast<int>(I.A.Imm);
    Pc = 0;
    return true;
  }

  case Opcode::CALLPTR: {
    ++Stats.Calls;
    uint64_t Fn = read(I.A);
    if (tagOf(Fn) != Tag::Function)
      return trap(Error, rtErrorMessage(RtError::NotAFunction));
    Regs[1] = mem(addrOf(Fn) + 1); // closure environment for the prologue
    push(makeRetWord(CurFunc, Pc));
    CurFunc = static_cast<int>(mem(addrOf(Fn)));
    Pc = 0;
    return true;
  }

  case Opcode::TAILCALL:
  case Opcode::TAILCALLPTR: {
    ++Stats.TailCalls;
    int Target;
    uint64_t K;
    if (I.Op == Opcode::TAILCALL) {
      K = static_cast<uint64_t>(I.A.Imm);
      Target = static_cast<int>(I.B.Imm);
    } else {
      K = static_cast<uint64_t>(I.B.Imm);
      uint64_t Fn = read(I.A);
      if (tagOf(Fn) != Tag::Function)
        return trap(Error, rtErrorMessage(RtError::NotAFunction));
      Regs[1] = mem(addrOf(Fn) + 1);
      Target = static_cast<int>(mem(addrOf(Fn)));
    }
    // New args were computed at the stack top. The original caller pops
    // exactly the arguments it pushed after the eventual return, so the
    // return word must stay put at FP-2 no matter how many arguments this
    // activation received: the K new arguments are placed right-justified
    // against it. Codegen only emits a tail call when K is at most the
    // current function's minimum arity, so they always fit inside the
    // activation's own argument area (slot FP+1 holds the received count).
    if (K > mem(Regs[FP] + 1))
      return trap(Error, "tail call passes more arguments than the frame holds");
    uint64_t ArgBase = Regs[FP] - 2 - K;
    uint64_t OldFp = mem(Regs[FP] - 1);
    Regs[ENV] = mem(Regs[FP] + 0);
    for (uint64_t J = 0; J < K; ++J)
      mem(ArgBase + J) = mem(Regs[SP] - K + J);
    Regs[SP] = Regs[FP] - 1;
    Regs[FP] = OldFp;
    Regs[RTA] = K;
    CurFunc = Target;
    Pc = 0;
    return true;
  }

  case Opcode::RET: {
    uint64_t RetW = pop();
    if (RetW == makeRetWord(-1, 0)) {
      CurFunc = -1; // back to host
      return true;
    }
    CurFunc = static_cast<int>((RetW >> 32) - 1);
    Pc = static_cast<int>(RetW & 0xFFFFFFFF);
    return true;
  }

  case Opcode::ALLOC: {
    uint64_t W = allocate(static_cast<Tag>(I.B.Imm), static_cast<uint64_t>(I.X.Imm));
    if (Halted)
      return trap(Error, "heap exhausted");
    write(I.A, W);
    return true;
  }

  case Opcode::SYSCALL: {
    ++Stats.Syscalls;
    Syscall S = static_cast<Syscall>(I.A.Imm);
    int HandlerPc = S == Syscall::PushCatch
                        ? F.LabelPos[static_cast<int>(I.B.Imm)]
                        : -1;
    return doSyscall(S, I.B.Imm, I.X.Imm, HandlerPc, Error);
  }
  }
  return trap(Error, "unimplemented opcode");
}

//===----------------------------------------------------------------------===//
// Threaded engine
//===----------------------------------------------------------------------===//

uint64_t Machine::xea(const XMem &M) {
  uint64_t Base = addrOf(Regs[M.Base]);
  int64_t Idx = 0;
  if (M.Index != 0xFF)
    Idx = static_cast<int64_t>(Regs[M.Index]) << M.Scale;
  return Base + static_cast<uint64_t>(M.Disp + Idx);
}

uint64_t Machine::xread(const XArg &A) {
  switch (A.M) {
  case XArg::Mode::Reg:
    return Regs[A.R];
  case XArg::Mode::Const:
    return A.K;
  case XArg::Mode::Mem:
    return mem(xea(A.Mem));
  default:
    assert(false && "unreadable operand");
    return 0;
  }
}

void Machine::xwrite(const XArg &A, uint64_t V) {
  switch (A.M) {
  case XArg::Mode::Reg:
    Regs[A.R] = V;
    return;
  case XArg::Mode::Mem:
    mem(xea(A.Mem)) = V;
    return;
  default:
    assert(false && "unwritable operand");
  }
}

// Dispatch plumbing shared by the computed-goto and switch forms: each
// handler is introduced by S1_CASE(op) and ends with S1_NEXT, which loops
// back to the fetch/count/dispatch preamble at the top of the for-loop.
#if S1_COMPUTED_GOTO
#define S1_CASE(op) H_##op:
#else
#define S1_CASE(op) case XOp::op:
#endif
#define S1_NEXT continue;

template <bool Detailed> bool Machine::runThreaded(std::string &Error) {
  const DecodedProgram &DP = *Decoded;
  const XInsn *Code = nullptr;
  int Size = 0;
  auto Reload = [&] {
    const DecodedFunction &DF = DP.Functions[CurFunc];
    Code = DF.Code.data();
    Size = static_cast<int>(DF.Code.size());
  };
  Reload();
  int LPc = Pc;
  const XInsn *I = nullptr;

  // Performs the frame surgery shared by TAILCALL/TAILCALLPTR; returns
  // false when the argument count cannot fit (the caller traps).
  auto TailTransfer = [&](uint64_t K, int Target) -> bool {
    if (K > mem(Regs[FP] + 1))
      return false;
    uint64_t ArgBase = Regs[FP] - 2 - K;
    uint64_t OldFp = mem(Regs[FP] - 1);
    Regs[ENV] = mem(Regs[FP] + 0);
    for (uint64_t J = 0; J < K; ++J)
      mem(ArgBase + J) = mem(Regs[SP] - K + J);
    Regs[SP] = Regs[FP] - 1;
    Regs[FP] = OldFp;
    Regs[RTA] = K;
    CurFunc = Target;
    Reload();
    LPc = 0;
    return true;
  };

  auto EaS = [&](const XMem &M) {
    return addrOf(Regs[M.Base]) + static_cast<uint64_t>(M.Disp);
  };
  auto EaX = [&](const XMem &M) {
    return addrOf(Regs[M.Base]) +
           static_cast<uint64_t>(M.Disp +
                                 (static_cast<int64_t>(Regs[M.Index]) << M.Scale));
  };

#if S1_COMPUTED_GOTO
  // Must match the XOp enumerator order exactly.
  static const void *Table[] = {
      &&H_MovRR,  &&H_MovRK,  &&H_MovRM,  &&H_MovRX,
      &&H_MovMR,  &&H_MovMK,  &&H_MovMM,  &&H_MovMX,
      &&H_MovXR,  &&H_MovXK,  &&H_MovXM,  &&H_MovXX,
      &&H_PushR,  &&H_PushK,  &&H_PushM,  &&H_PushX,
      &&H_PopR,   &&H_PopM,
      &&H_AddRR,  &&H_AddRK,  &&H_SubRR,  &&H_SubRK,
      &&H_Alu2G,  &&H_Alu3G,
      &&H_Jmp,    &&H_JmpzRR, &&H_JmpzRK, &&H_JmpzG,  &&H_FJmpzG,
      &&H_Call,   &&H_CallPtr, &&H_TailCall, &&H_TailCallPtr, &&H_Ret,
      &&H_MovTag, &&H_GetTag, &&H_Lea,
      &&H_FAlu2,  &&H_FAlu3,  &&H_FUnary, &&H_FAtan,  &&H_Itof, &&H_Ftoi,
      &&H_Alloc,  &&H_Syscall, &&H_Halt,
  };
#endif

  for (;;) {
    // Identical trap ordering to runLegacy: halted, fuel, pc range —
    // checked before the instruction is fetched or counted.
    if (Halted) {
      Pc = LPc;
      return trap(Error,
                  "machine halted unexpectedly (memory fault or heap full)");
    }
    if (Stats.Instructions >= Fuel) {
      Pc = LPc;
      return trap(Error, "instruction fuel exhausted");
    }
    // Same point in the boundary sequence as runLegacy's check.
    if (GcPending)
      collectGarbage();
    if (LPc < 0 || LPc >= Size) {
      Pc = LPc;
      return trap(Error, "pc out of range");
    }
    I = &Code[LPc++];
    ++Stats.Instructions;
    if constexpr (Detailed)
      ++Stats.PerOpcode[static_cast<size_t>(I->OrigOp)];

#if S1_COMPUTED_GOTO
    goto *Table[static_cast<size_t>(I->Op)];
#else
    switch (I->Op) {
#endif

    S1_CASE(MovRR) {
      if constexpr (Detailed)
        ++Stats.Movs;
      Regs[I->A] = Regs[I->B];
    }
    S1_NEXT

    S1_CASE(MovRK) {
      if constexpr (Detailed)
        ++Stats.Movs;
      Regs[I->A] = I->K;
    }
    S1_NEXT

    S1_CASE(MovRM) {
      if constexpr (Detailed)
        ++Stats.Movs;
      Regs[I->A] = mem(EaS(I->MB));
    }
    S1_NEXT

    S1_CASE(MovRX) {
      if constexpr (Detailed)
        ++Stats.Movs;
      Regs[I->A] = mem(EaX(I->MB));
    }
    S1_NEXT

    S1_CASE(MovMR) {
      if constexpr (Detailed)
        ++Stats.Movs;
      mem(EaS(I->MA)) = Regs[I->B];
    }
    S1_NEXT

    S1_CASE(MovMK) {
      if constexpr (Detailed)
        ++Stats.Movs;
      mem(EaS(I->MA)) = I->K;
    }
    S1_NEXT

    S1_CASE(MovMM) {
      if constexpr (Detailed)
        ++Stats.Movs;
      uint64_t V = mem(EaS(I->MB));
      mem(EaS(I->MA)) = V;
    }
    S1_NEXT

    S1_CASE(MovMX) {
      if constexpr (Detailed)
        ++Stats.Movs;
      uint64_t V = mem(EaX(I->MB));
      mem(EaS(I->MA)) = V;
    }
    S1_NEXT

    S1_CASE(MovXR) {
      if constexpr (Detailed)
        ++Stats.Movs;
      mem(EaX(I->MA)) = Regs[I->B];
    }
    S1_NEXT

    S1_CASE(MovXK) {
      if constexpr (Detailed)
        ++Stats.Movs;
      mem(EaX(I->MA)) = I->K;
    }
    S1_NEXT

    S1_CASE(MovXM) {
      if constexpr (Detailed)
        ++Stats.Movs;
      uint64_t V = mem(EaS(I->MB));
      mem(EaX(I->MA)) = V;
    }
    S1_NEXT

    S1_CASE(MovXX) {
      if constexpr (Detailed)
        ++Stats.Movs;
      uint64_t V = mem(EaX(I->MB));
      mem(EaX(I->MA)) = V;
    }
    S1_NEXT

    S1_CASE(PushR) {
      if (Regs[SP] + 1 >= StackBase + StackWords) {
        Pc = LPc;
        return trap(Error, "stack overflow");
      }
      push(Regs[I->B]);
    }
    S1_NEXT

    S1_CASE(PushK) {
      if (Regs[SP] + 1 >= StackBase + StackWords) {
        Pc = LPc;
        return trap(Error, "stack overflow");
      }
      push(I->K);
    }
    S1_NEXT

    S1_CASE(PushM) {
      if (Regs[SP] + 1 >= StackBase + StackWords) {
        Pc = LPc;
        return trap(Error, "stack overflow");
      }
      push(mem(EaS(I->MB)));
    }
    S1_NEXT

    S1_CASE(PushX) {
      if (Regs[SP] + 1 >= StackBase + StackWords) {
        Pc = LPc;
        return trap(Error, "stack overflow");
      }
      push(mem(EaX(I->MB)));
    }
    S1_NEXT

    S1_CASE(PopR) {
      Regs[I->A] = pop();
    }
    S1_NEXT

    S1_CASE(PopM) {
      uint64_t V = pop();
      xwrite(I->GA, V);
    }
    S1_NEXT

    S1_CASE(AddRR) {
      Regs[I->A] = static_cast<uint64_t>(static_cast<int64_t>(Regs[I->A]) +
                                         static_cast<int64_t>(Regs[I->B]));
    }
    S1_NEXT

    S1_CASE(AddRK) {
      Regs[I->A] = static_cast<uint64_t>(static_cast<int64_t>(Regs[I->A]) +
                                         static_cast<int64_t>(I->K));
    }
    S1_NEXT

    S1_CASE(SubRR) {
      Regs[I->A] = static_cast<uint64_t>(static_cast<int64_t>(Regs[I->A]) -
                                         static_cast<int64_t>(Regs[I->B]));
    }
    S1_NEXT

    S1_CASE(SubRK) {
      Regs[I->A] = static_cast<uint64_t>(static_cast<int64_t>(Regs[I->A]) -
                                         static_cast<int64_t>(I->K));
    }
    S1_NEXT

    S1_CASE(Alu2G) {
      int64_t A = static_cast<int64_t>(xread(I->GA));
      int64_t B = static_cast<int64_t>(xread(I->GB));
      int64_t R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::ADD:
        R = A + B;
        break;
      case Opcode::SUB:
        R = A - B;
        break;
      case Opcode::MULT:
        R = A * B;
        break;
      default:
        if (B == 0) {
          Pc = LPc;
          return trap(Error, rtErrorMessage(RtError::DivisionByZero));
        }
        R = A / B;
        break;
      }
      xwrite(I->GA, static_cast<uint64_t>(R));
    }
    S1_NEXT

    S1_CASE(Alu3G) {
      int64_t A = static_cast<int64_t>(xread(I->GB));
      int64_t B = static_cast<int64_t>(xread(I->GX));
      int64_t R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::ADD:
        R = A + B;
        break;
      case Opcode::SUB:
        R = A - B;
        break;
      case Opcode::MULT:
        R = A * B;
        break;
      default:
        if (B == 0) {
          Pc = LPc;
          return trap(Error, rtErrorMessage(RtError::DivisionByZero));
        }
        R = A / B;
        break;
      }
      xwrite(I->GA, static_cast<uint64_t>(R));
    }
    S1_NEXT

    S1_CASE(Jmp) {
      LPc = I->Target;
    }
    S1_NEXT

    S1_CASE(JmpzRR) {
      int64_t A = static_cast<int64_t>(Regs[I->A]);
      int64_t B = static_cast<int64_t>(Regs[I->B]);
      int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
      if (condHolds(I->C, Sign))
        LPc = I->Target;
    }
    S1_NEXT

    S1_CASE(JmpzRK) {
      int64_t A = static_cast<int64_t>(Regs[I->A]);
      int64_t B = static_cast<int64_t>(I->K);
      int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
      if (condHolds(I->C, Sign))
        LPc = I->Target;
    }
    S1_NEXT

    S1_CASE(JmpzG) {
      int64_t A = static_cast<int64_t>(xread(I->GA));
      int64_t B = static_cast<int64_t>(xread(I->GB));
      int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
      if (condHolds(I->C, Sign))
        LPc = I->Target;
    }
    S1_NEXT

    S1_CASE(FJmpzG) {
      double A = asDouble(xread(I->GA));
      double B = asDouble(xread(I->GB));
      int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
      if ((std::isnan(A) || std::isnan(B)) ? I->C == Cond::NEQ
                                           : condHolds(I->C, Sign))
        LPc = I->Target;
    }
    S1_NEXT

    S1_CASE(Call) {
      ++Stats.Calls;
      if (Regs[SP] + 4 >= StackBase + StackWords) {
        Pc = LPc;
        return trap(Error, "stack overflow");
      }
      push(makeRetWord(CurFunc, LPc));
      CurFunc = I->Target;
      Reload();
      LPc = 0;
    }
    S1_NEXT

    S1_CASE(CallPtr) {
      ++Stats.Calls;
      uint64_t Fn = xread(I->GA);
      if (tagOf(Fn) != Tag::Function) {
        Pc = LPc;
        return trap(Error, rtErrorMessage(RtError::NotAFunction));
      }
      Regs[1] = mem(addrOf(Fn) + 1); // closure environment for the prologue
      push(makeRetWord(CurFunc, LPc));
      CurFunc = static_cast<int>(mem(addrOf(Fn)));
      Reload();
      LPc = 0;
    }
    S1_NEXT

    S1_CASE(TailCall) {
      ++Stats.TailCalls;
      if (!TailTransfer(static_cast<uint64_t>(I->S2), I->Target)) {
        Pc = LPc;
        return trap(Error,
                    "tail call passes more arguments than the frame holds");
      }
    }
    S1_NEXT

    S1_CASE(TailCallPtr) {
      ++Stats.TailCalls;
      uint64_t Fn = xread(I->GA);
      if (tagOf(Fn) != Tag::Function) {
        Pc = LPc;
        return trap(Error, rtErrorMessage(RtError::NotAFunction));
      }
      Regs[1] = mem(addrOf(Fn) + 1);
      if (!TailTransfer(static_cast<uint64_t>(I->S2),
                        static_cast<int>(mem(addrOf(Fn))))) {
        Pc = LPc;
        return trap(Error,
                    "tail call passes more arguments than the frame holds");
      }
    }
    S1_NEXT

    S1_CASE(Ret) {
      uint64_t RetW = pop();
      if (RetW == makeRetWord(-1, 0)) {
        CurFunc = -1; // back to host
        Pc = 0;
        return true;
      }
      CurFunc = static_cast<int>((RetW >> 32) - 1);
      LPc = static_cast<int>(RetW & 0xFFFFFFFF);
      Reload();
    }
    S1_NEXT

    S1_CASE(MovTag) {
      uint64_t Addr = I->GB.M == XArg::Mode::Mem ? xea(I->GB.Mem)
                                                 : addrOf(xread(I->GB));
      xwrite(I->GA, makePointer(static_cast<Tag>(I->S1), Addr));
    }
    S1_NEXT

    S1_CASE(GetTag) {
      xwrite(I->GA, static_cast<uint64_t>(tagOf(xread(I->GB))));
    }
    S1_NEXT

    S1_CASE(Lea) {
      xwrite(I->GA, xea(I->GB.Mem));
    }
    S1_NEXT

    S1_CASE(FAlu2) {
      double A = asDouble(xread(I->GA));
      double B = asDouble(xread(I->GB));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FADD:
        R = A + B;
        break;
      case Opcode::FSUB:
        R = A - B;
        break;
      case Opcode::FMULT:
        R = A * B;
        break;
      case Opcode::FDIV:
        R = A / B;
        break;
      case Opcode::FMAX:
        R = std::max(A, B);
        break;
      default:
        R = std::min(A, B);
        break;
      }
      xwrite(I->GA, fromDouble(R));
    }
    S1_NEXT

    S1_CASE(FAlu3) {
      double A = asDouble(xread(I->GB));
      double B = asDouble(xread(I->GX));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FADD:
        R = A + B;
        break;
      case Opcode::FSUB:
        R = A - B;
        break;
      case Opcode::FMULT:
        R = A * B;
        break;
      case Opcode::FDIV:
        R = A / B;
        break;
      case Opcode::FMAX:
        R = std::max(A, B);
        break;
      default:
        R = std::min(A, B);
        break;
      }
      xwrite(I->GA, fromDouble(R));
    }
    S1_NEXT

    S1_CASE(FUnary) {
      double X = asDouble(xread(I->GB));
      double R;
      switch (static_cast<Opcode>(I->Sub)) {
      case Opcode::FNEG:
        R = -X;
        break;
      case Opcode::FABS:
        R = std::fabs(X);
        break;
      case Opcode::FSQRT:
        R = std::sqrt(X);
        break;
      case Opcode::FSIN:
        R = std::sin(X * 2.0 * M_PI); // the S-1 trig unit takes cycles
        break;
      case Opcode::FCOS:
        R = std::cos(X * 2.0 * M_PI);
        break;
      case Opcode::FEXP:
        R = std::exp(X);
        break;
      default:
        R = std::log(X);
        break;
      }
      xwrite(I->GA, fromDouble(R));
    }
    S1_NEXT

    S1_CASE(FAtan) {
      double Y = asDouble(xread(I->GB));
      double X = asDouble(xread(I->GX));
      xwrite(I->GA, fromDouble(std::atan2(Y, X)));
    }
    S1_NEXT

    S1_CASE(Itof) {
      xwrite(I->GA, fromDouble(static_cast<double>(
                        static_cast<int64_t>(xread(I->GB)))));
    }
    S1_NEXT

    S1_CASE(Ftoi) {
      xwrite(I->GA, static_cast<uint64_t>(
                        static_cast<int64_t>(asDouble(xread(I->GB)))));
    }
    S1_NEXT

    S1_CASE(Alloc) {
      uint64_t W = allocate(static_cast<Tag>(I->S1),
                            static_cast<uint64_t>(I->S2));
      if (Halted) {
        Pc = LPc;
        return trap(Error, "heap exhausted");
      }
      xwrite(I->GA, W);
    }
    S1_NEXT

    S1_CASE(Syscall) {
      ++Stats.Syscalls;
      Pc = LPc;
      if (!doSyscall(static_cast<Syscall>(I->S1), I->S2, I->S3, I->Target,
                     Error))
        return false;
      // Throw may have transferred control to another function's handler.
      Reload();
      LPc = Pc;
    }
    S1_NEXT

    S1_CASE(Halt) {
      Pc = LPc;
      return trap(Error, "HALT executed");
    }
    S1_NEXT

#if !S1_COMPUTED_GOTO
    }
    Pc = LPc;
    return trap(Error, "unimplemented opcode");
#endif
  }
}

#undef S1_CASE
#undef S1_NEXT

//===----------------------------------------------------------------------===//
// Runtime services
//===----------------------------------------------------------------------===//

bool Machine::wordEql(uint64_t A, uint64_t B) {
  if (A == B)
    return true;
  if (tagOf(A) != tagOf(B))
    return false;
  switch (tagOf(A)) {
  case Tag::SingleFlonum:
    return asDouble(Memory[addrOf(A)]) == asDouble(Memory[addrOf(B)]);
  case Tag::Ratio:
    return Memory[addrOf(A)] == Memory[addrOf(B)] &&
           Memory[addrOf(A) + 1] == Memory[addrOf(B) + 1];
  default:
    return false;
  }
}

uint64_t Machine::certify(uint64_t W) {
  uint64_t Addr = addrOf(W);
  if (!isStackAddress(Addr))
    return W;
  switch (tagOf(W)) {
  case Tag::SingleFlonum: {
    uint64_t NewW = allocate(Tag::SingleFlonum, 1);
    mem(addrOf(NewW)) = Memory[Addr];
    return NewW;
  }
  case Tag::Ratio: {
    uint64_t NewW = allocate(Tag::Ratio, 2);
    mem(addrOf(NewW)) = Memory[Addr];
    mem(addrOf(NewW) + 1) = Memory[Addr + 1];
    return NewW;
  }
  default:
    return W;
  }
}

void Machine::invalidateSpecCacheAbove(uint64_t NewTop) {
  if (SpecCache.empty())
    return;
  // Erase the cache entry of every symbol bound in the popped region.
  // Erasing a symbol whose topmost binding survives below merely costs a
  // re-scan (and re-cache) on its next lookup.
  for (uint64_t A = NewTop; A < SpecTop; A += 2)
    SpecCache.erase(mem(A));
}

bool Machine::doSyscall(Syscall S, int64_t SubCode, int64_t XImm,
                        int HandlerPc, std::string &Error) {
  auto DecodeNum = [this](uint64_t W) -> std::optional<Value> {
    switch (tagOf(W)) {
    case Tag::Fixnum:
      return Value::fixnum(fixnumValue(W));
    case Tag::SingleFlonum:
      return Value::flonum(asDouble(Memory[addrOf(W)]));
    case Tag::Ratio:
      return DecodeHeap.makeRatio(static_cast<int64_t>(Memory[addrOf(W)]),
                                  static_cast<int64_t>(Memory[addrOf(W) + 1]));
    default:
      return std::nullopt;
    }
  };
  auto EncodeNum = [this, &Error](Value V, bool &Ok) -> uint64_t {
    Ok = true;
    switch (V.kind()) {
    case sexpr::ValueKind::Fixnum:
      if (V.fixnum() < INT32_MIN || V.fixnum() > INT32_MAX) {
        Ok = trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
        return NilWord;
      }
      return makeFixnum(V.fixnum());
    case sexpr::ValueKind::Flonum:
      return boxFlonum(V.flonum());
    case sexpr::ValueKind::Ratio: {
      uint64_t W = allocate(Tag::Ratio, 2);
      mem(addrOf(W)) = static_cast<uint64_t>(V.ratio().Num);
      mem(addrOf(W) + 1) = static_cast<uint64_t>(V.ratio().Den);
      return W;
    }
    default:
      Ok = trap(Error, "non-numeric result");
      return NilWord;
    }
  };
  auto TBool = [this](bool B) { Regs[RV] = B ? trueWord() : NilWord; };
  auto TypeError = [this, &Error] {
    return trap(Error, rtErrorMessage(RtError::WrongTypeOfArgument));
  };

  switch (S) {
  case Syscall::GenericAdd:
  case Syscall::GenericSub:
  case Syscall::GenericMul:
  case Syscall::GenericDiv:
  case Syscall::GenericArith2: {
    uint64_t BW = pop(), AW = pop();
    // Fixnum fast path for the three closed operations: exact 64-bit
    // arithmetic on 32-bit inputs cannot wrap, and the 32-bit range check
    // reproduces EncodeNum's overflow trap exactly. Division may produce
    // a ratio and Arith2 has per-subcode semantics — both take the
    // generic route.
    if (tagOf(AW) == Tag::Fixnum && tagOf(BW) == Tag::Fixnum &&
        (S == Syscall::GenericAdd || S == Syscall::GenericSub ||
         S == Syscall::GenericMul)) {
      int64_t A = fixnumValue(AW), B = fixnumValue(BW);
      int64_t R = S == Syscall::GenericAdd   ? A + B
                  : S == Syscall::GenericSub ? A - B
                                             : A * B;
      if (R < INT32_MIN || R > INT32_MAX)
        return trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
      Regs[RV] = makeFixnum(R);
      return true;
    }
    auto A = DecodeNum(AW), B = DecodeNum(BW);
    if (!A || !B)
      return TypeError();
    sexpr::ArithOp Op;
    switch (S) {
    case Syscall::GenericAdd:
      Op = sexpr::ArithOp::Add;
      break;
    case Syscall::GenericSub:
      Op = sexpr::ArithOp::Sub;
      break;
    case Syscall::GenericMul:
      Op = sexpr::ArithOp::Mul;
      break;
    case Syscall::GenericDiv:
      Op = sexpr::ArithOp::Div;
      break;
    default:
      switch (static_cast<ArithCode>(SubCode)) {
      case ArithCode::Floor:
        Op = sexpr::ArithOp::Floor;
        break;
      case ArithCode::Ceiling:
        Op = sexpr::ArithOp::Ceiling;
        break;
      case ArithCode::Truncate:
        Op = sexpr::ArithOp::Truncate;
        break;
      case ArithCode::Round:
        Op = sexpr::ArithOp::Round;
        break;
      case ArithCode::Mod:
        Op = sexpr::ArithOp::Mod;
        break;
      case ArithCode::Rem:
        Op = sexpr::ArithOp::Rem;
        break;
      case ArithCode::Expt:
        Op = sexpr::ArithOp::Expt;
        break;
      case ArithCode::Max:
        Op = sexpr::ArithOp::Max;
        break;
      default:
        Op = sexpr::ArithOp::Min;
        break;
      }
      break;
    }
    auto R = sexpr::arith(DecodeHeap, Op, *A, *B);
    if (!R)
      return TypeError();
    bool Ok;
    Regs[RV] = EncodeNum(*R, Ok);
    return Ok;
  }

  case Syscall::GenericUnary: {
    uint64_t AW = pop();
    UnaryCode UC = static_cast<UnaryCode>(SubCode);
    if (tagOf(AW) == Tag::Fixnum) {
      int64_t V = fixnumValue(AW);
      bool Fast = true;
      int64_t R = 0;
      switch (UC) {
      case UnaryCode::Neg:
        R = -V;
        break;
      case UnaryCode::Abs:
        R = V < 0 ? -V : V;
        break;
      case UnaryCode::Add1:
        R = V + 1;
        break;
      case UnaryCode::Sub1:
        R = V - 1;
        break;
      default: // Sqrt / ToFloat produce flonums
        Fast = false;
        break;
      }
      if (Fast) {
        if (R < INT32_MIN || R > INT32_MAX)
          return trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
        Regs[RV] = makeFixnum(R);
        return true;
      }
    }
    auto A = DecodeNum(AW);
    if (!A)
      return TypeError();
    std::optional<Value> R;
    switch (UC) {
    case UnaryCode::Neg:
      R = sexpr::negate(DecodeHeap, *A);
      break;
    case UnaryCode::Abs:
      R = sexpr::numAbs(DecodeHeap, *A);
      break;
    case UnaryCode::Add1:
      R = sexpr::add1(DecodeHeap, *A);
      break;
    case UnaryCode::Sub1:
      R = sexpr::sub1(DecodeHeap, *A);
      break;
    case UnaryCode::Sqrt: {
      auto D = sexpr::toDouble(*A);
      if (D && *D >= 0)
        R = Value::flonum(std::sqrt(*D));
      break;
    }
    case UnaryCode::ToFloat: {
      auto D = sexpr::toDouble(*A);
      if (D)
        R = Value::flonum(*D);
      break;
    }
    }
    if (!R)
      return TypeError();
    bool Ok;
    Regs[RV] = EncodeNum(*R, Ok);
    return Ok;
  }

  case Syscall::GenericCompare: {
    uint64_t BW = pop(), AW = pop();
    if (tagOf(AW) == Tag::Fixnum && tagOf(BW) == Tag::Fixnum) {
      int64_t A = fixnumValue(AW), B = fixnumValue(BW);
      bool R;
      switch (static_cast<Cond>(SubCode)) {
      case Cond::EQ:
        R = A == B;
        break;
      case Cond::NEQ:
        R = A != B;
        break;
      case Cond::LT:
        R = A < B;
        break;
      case Cond::GT:
        R = A > B;
        break;
      case Cond::LE:
        R = A <= B;
        break;
      default:
        R = A >= B;
        break;
      }
      TBool(R);
      return true;
    }
    auto A = DecodeNum(AW), B = DecodeNum(BW);
    if (!A || !B)
      return TypeError();
    sexpr::CompareOp Op;
    switch (static_cast<Cond>(SubCode)) {
    case Cond::EQ:
      Op = sexpr::CompareOp::Eq;
      break;
    case Cond::NEQ:
      Op = sexpr::CompareOp::Ne;
      break;
    case Cond::LT:
      Op = sexpr::CompareOp::Lt;
      break;
    case Cond::GT:
      Op = sexpr::CompareOp::Gt;
      break;
    case Cond::LE:
      Op = sexpr::CompareOp::Le;
      break;
    default:
      Op = sexpr::CompareOp::Ge;
      break;
    }
    auto R = sexpr::compare(Op, *A, *B);
    if (!R)
      return TypeError();
    TBool(*R);
    return true;
  }

  case Syscall::GenericNumPred: {
    uint64_t AW = pop();
    if (tagOf(AW) == Tag::Fixnum) {
      int64_t V = fixnumValue(AW);
      bool R;
      switch (static_cast<PredCode>(SubCode)) {
      case PredCode::Zerop:
        R = V == 0;
        break;
      case PredCode::Oddp:
        R = (V % 2) != 0;
        break;
      case PredCode::Evenp:
        R = (V % 2) == 0;
        break;
      case PredCode::Plusp:
        R = V > 0;
        break;
      default:
        R = V < 0;
        break;
      }
      TBool(R);
      return true;
    }
    auto A = DecodeNum(AW);
    if (!A)
      return TypeError();
    std::optional<bool> R;
    switch (static_cast<PredCode>(SubCode)) {
    case PredCode::Zerop:
      R = sexpr::isZero(*A);
      break;
    case PredCode::Oddp:
      R = sexpr::isOdd(*A);
      break;
    case PredCode::Evenp:
      R = sexpr::isEven(*A);
      break;
    case PredCode::Plusp:
      R = sexpr::isPlus(*A);
      break;
    default:
      R = sexpr::isMinus(*A);
      break;
    }
    if (!R)
      return TypeError();
    TBool(*R);
    return true;
  }

  case Syscall::ConsFlonum:
    Regs[RV] = boxFlonum(asDouble(pop()));
    return true;

  case Syscall::ConsFixnum: {
    int64_t V = static_cast<int64_t>(pop());
    if (V < INT32_MIN || V > INT32_MAX)
      return trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
    Regs[RV] = makeFixnum(V);
    return true;
  }

  case Syscall::UnboxFloat: {
    uint64_t W = pop();
    auto A = DecodeNum(W);
    auto D = A ? sexpr::toDouble(*A) : std::nullopt;
    if (!D)
      return TypeError();
    Regs[RV] = fromDouble(*D);
    return true;
  }

  case Syscall::UnboxFixnum: {
    uint64_t W = pop();
    if (tagOf(W) != Tag::Fixnum)
      return TypeError();
    Regs[RV] = static_cast<uint64_t>(fixnumValue(W));
    return true;
  }

  case Syscall::Cons: {
    uint64_t Cdr = pop(), Car = pop();
    uint64_t W = allocate(Tag::Cons, 2);
    mem(addrOf(W)) = Car;
    mem(addrOf(W) + 1) = Cdr;
    Regs[RV] = W;
    return true;
  }

  case Syscall::ListPrim: {
    ListCode Code = static_cast<ListCode>(SubCode);
    auto IsList = [this](uint64_t W) {
      return tagOf(W) == Tag::Nil || tagOf(W) == Tag::Cons;
    };
    auto CarOf = [this](uint64_t W) {
      return tagOf(W) == Tag::Cons ? Memory[addrOf(W)] : NilWord;
    };
    auto CdrOf = [this](uint64_t W) {
      return tagOf(W) == Tag::Cons ? Memory[addrOf(W) + 1] : NilWord;
    };
    switch (Code) {
    case ListCode::Length: {
      uint64_t L = pop();
      if (tagOf(L) == Tag::String) {
        Regs[RV] = makeFixnum(static_cast<int64_t>(Memory[addrOf(L)]));
        return true;
      }
      if (!IsList(L))
        return TypeError();
      int64_t N = 0;
      while (tagOf(L) == Tag::Cons) {
        ++N;
        L = CdrOf(L);
      }
      Regs[RV] = makeFixnum(N);
      return true;
    }
    case ListCode::Reverse: {
      uint64_t L = pop();
      if (!IsList(L))
        return TypeError();
      uint64_t R = NilWord;
      while (tagOf(L) == Tag::Cons) {
        uint64_t W = allocate(Tag::Cons, 2);
        mem(addrOf(W)) = CarOf(L);
        mem(addrOf(W) + 1) = R;
        R = W;
        L = CdrOf(L);
      }
      Regs[RV] = R;
      return true;
    }
    case ListCode::Append2: {
      uint64_t B = pop(), A = pop();
      if (!IsList(A))
        return TypeError();
      std::vector<uint64_t> Items;
      for (uint64_t L = A; tagOf(L) == Tag::Cons; L = CdrOf(L))
        Items.push_back(CarOf(L));
      uint64_t R = B;
      for (size_t J = Items.size(); J > 0; --J) {
        uint64_t W = allocate(Tag::Cons, 2);
        mem(addrOf(W)) = Items[J - 1];
        mem(addrOf(W) + 1) = R;
        R = W;
      }
      Regs[RV] = R;
      return true;
    }
    case ListCode::Member: {
      uint64_t L = pop(), X = pop();
      while (tagOf(L) == Tag::Cons) {
        if (wordEql(CarOf(L), X)) {
          Regs[RV] = L;
          return true;
        }
        L = CdrOf(L);
      }
      Regs[RV] = NilWord;
      return true;
    }
    case ListCode::Assoc: {
      uint64_t L = pop(), X = pop();
      while (tagOf(L) == Tag::Cons) {
        uint64_t Pair = CarOf(L);
        if (tagOf(Pair) == Tag::Cons && wordEql(CarOf(Pair), X)) {
          Regs[RV] = Pair;
          return true;
        }
        L = CdrOf(L);
      }
      Regs[RV] = NilWord;
      return true;
    }
    case ListCode::Nth:
    case ListCode::NthCdr: {
      uint64_t L = pop(), NW = pop();
      if (tagOf(NW) != Tag::Fixnum)
        return TypeError();
      for (int64_t J = 0; J < fixnumValue(NW) && tagOf(L) == Tag::Cons; ++J)
        L = CdrOf(L);
      Regs[RV] = Code == ListCode::Nth ? CarOf(L) : L;
      return true;
    }
    case ListCode::Last: {
      uint64_t L = pop();
      while (tagOf(L) == Tag::Cons && tagOf(CdrOf(L)) == Tag::Cons)
        L = CdrOf(L);
      Regs[RV] = L;
      return true;
    }
    case ListCode::Equal: {
      uint64_t B = pop(), A = pop();
      // Structural equality via decode (bounded).
      auto DA = decode(A), DB = decode(B);
      if (DA && DB)
        TBool(sexpr::equal(*DA, *DB));
      else
        TBool(wordEql(A, B));
      return true;
    }
    case ListCode::ListN: {
      int64_t N = XImm;
      uint64_t R = NilWord;
      for (int64_t J = 0; J < N; ++J) {
        uint64_t W = allocate(Tag::Cons, 2);
        mem(addrOf(W)) = pop(); // rightmost argument first
        mem(addrOf(W) + 1) = R;
        R = W;
      }
      Regs[RV] = R;
      return true;
    }
    }
    return trap(Error, "bad list primitive");
  }

  case Syscall::Certify:
    Regs[RV] = certify(pop());
    return true;

  case Syscall::SpecBind: {
    uint64_t V = pop(), Sym = pop();
    mem(SpecTop) = Sym;
    mem(SpecTop + 1) = V;
    SpecCache[Sym] = SpecTop + 1; // this pair is now the topmost binding
    SpecTop += 2;
    return true;
  }

  case Syscall::SpecUnbind: {
    uint64_t NewTop = SpecTop - 2 * static_cast<uint64_t>(SubCode);
    invalidateSpecCacheAbove(NewTop);
    SpecTop = NewTop;
    return true;
  }

  case Syscall::SpecLookup: {
    uint64_t Sym = pop();
    ++Stats.SpecialSearches;
    auto It = SpecCache.find(Sym);
    if (It != SpecCache.end()) {
      // Shallow-cache hit: skip the scan but charge SpecialSearchSteps
      // exactly what the linear search below would have counted, so the
      // §4.4 deep-binding cost tables stay honest.
      uint64_t Cell = It->second;
      if (Cell >= SpecBase && Cell < SpecTop)
        Stats.SpecialSearchSteps += (SpecTop - Cell + 1) / 2;
      else
        Stats.SpecialSearchSteps += (SpecTop - SpecBase) / 2; // full scan
      Regs[RV] = Cell;
      return true;
    }
    for (uint64_t A = SpecTop; A > SpecBase; A -= 2) {
      ++Stats.SpecialSearchSteps;
      if (mem(A - 2) == Sym) {
        Regs[RV] = A - 1;
        SpecCache.emplace(Sym, A - 1);
        return true;
      }
    }
    // Fall back to the symbol's global value cell. An unbound cell is
    // still a valid cache target: reads check for UnboundWord, and a setq
    // through it creates the global binding.
    Regs[RV] = addrOf(Sym);
    SpecCache.emplace(Sym, addrOf(Sym));
    return true;
  }

  case Syscall::MakeClosure: {
    uint64_t Env = pop();
    uint64_t W = allocate(Tag::Function, 2);
    mem(addrOf(W)) = static_cast<uint64_t>(SubCode);
    mem(addrOf(W) + 1) = Env;
    Regs[RV] = W;
    return true;
  }

  case Syscall::MakeEnv: {
    uint64_t Parent = pop();
    uint64_t Size = static_cast<uint64_t>(SubCode);
    uint64_t W = allocate(Tag::Environment, 1 + Size);
    mem(addrOf(W)) = Parent;
    Regs[RV] = W;
    return true;
  }

  case Syscall::MakeRestList: {
    uint64_t Count = pop();
    uint64_t Base = pop();
    uint64_t R = NilWord;
    for (uint64_t J = Count; J > 0; --J) {
      uint64_t W = allocate(Tag::Cons, 2);
      mem(addrOf(W)) = mem(Base + J - 1);
      mem(addrOf(W) + 1) = R;
      R = W;
    }
    Regs[RV] = R;
    return true;
  }

  case Syscall::SpreadList: {
    uint64_t L = pop();
    uint64_t N = 0;
    while (tagOf(L) == Tag::Cons) {
      push(Memory[addrOf(L)]);
      L = Memory[addrOf(L) + 1];
      ++N;
    }
    if (tagOf(L) != Tag::Nil)
      return TypeError();
    Regs[RV] = N;
    return true;
  }

  case Syscall::ArrayMake: {
    uint64_t D1W = pop(), D0W = pop();
    if (tagOf(D0W) != Tag::Fixnum || fixnumValue(D0W) < 0)
      return TypeError();
    size_t D1 = 0;
    if (tagOf(D1W) == Tag::Fixnum) {
      if (fixnumValue(D1W) < 0)
        return TypeError();
      D1 = static_cast<size_t>(fixnumValue(D1W));
    } else if (tagOf(D1W) != Tag::Nil) {
      return TypeError();
    }
    Regs[RV] = makeArrayF(static_cast<size_t>(fixnumValue(D0W)), D1);
    return true;
  }

  case Syscall::Error:
    return trap(Error, rtErrorMessage(static_cast<RtError>(SubCode)));

  case Syscall::Print: {
    uint64_t W = pop();
    auto V = decode(W);
    Out += V ? sexpr::toString(*V)
             : (tagOf(W) == Tag::Function ? "#<function>" : "#<object>");
    Out += '\n';
    Regs[RV] = W;
    return true;
  }

  case Syscall::Throw: {
    uint64_t V = pop(), TagW = pop();
    for (size_t J = Catches.size(); J > 0; --J) {
      CatchFrame &C = Catches[J - 1];
      if (wordEql(C.TagWord, TagW)) {
        Regs[SP] = C.Sp;
        Regs[FP] = C.Fp;
        Regs[ENV] = C.Env;
        uint64_t NewTop = SpecBase + 2 * C.SpecDepth;
        if (NewTop < SpecTop)
          invalidateSpecCacheAbove(NewTop);
        SpecTop = NewTop;
        CurFunc = C.Func;
        Pc = C.Pc;
        Regs[RV] = V;
        Catches.resize(C.CatchDepth);
        return true;
      }
    }
    return trap(Error, rtErrorMessage(RtError::UncaughtThrow));
  }

  case Syscall::PushCatch: {
    uint64_t TagW = pop();
    CatchFrame C;
    C.TagWord = TagW;
    C.Func = CurFunc;
    C.Pc = HandlerPc; // in the executing engine's pc units
    C.Sp = Regs[SP];
    C.Fp = Regs[FP];
    C.Env = Regs[ENV];
    C.SpecDepth = (SpecTop - SpecBase) / 2;
    C.CatchDepth = Catches.size();
    Catches.push_back(C);
    return true;
  }

  case Syscall::PopCatch:
    if (!Catches.empty())
      Catches.pop_back();
    return true;
  }
  return trap(Error, "unimplemented syscall");
}
