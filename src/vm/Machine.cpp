//===- vm/Machine.cpp -----------------------------------------------------===//

#include "vm/Machine.h"

#include "sexpr/Numbers.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"

#include <cmath>
#include <cstring>

S1_STAT(VmInstructions, "vm.instructions", "instructions retired");
S1_STAT(VmMovs, "vm.movs", "MOV opcodes retired (the 6.1 metric)");
S1_STAT(VmCalls, "vm.calls", "function calls executed");
S1_STAT(VmTailCalls, "vm.tailcalls", "tail calls executed as jumps");
S1_STAT(VmSyscalls, "vm.syscalls", "runtime (SQ routine) calls");
S1_STAT(VmHeapObjects, "vm.heap.objects", "boxed objects allocated");
S1_STAT(VmHeapWords, "vm.heap.words", "heap words allocated");
S1_STAT(VmStackHighWater, "vm.stack.highwater", "max stack depth in words");
S1_STAT(VmSpecialSearches, "vm.special.searches",
        "deep-binding stack searches");
S1_STAT(VmSpecialSearchSteps, "vm.special.searchsteps",
        "bindings scanned during searches");

using namespace s1lisp;
using namespace s1lisp::vm;
using namespace s1lisp::s1;
using sexpr::Value;

namespace {

double asDouble(uint64_t W) {
  double D;
  std::memcpy(&D, &W, sizeof(D));
  return D;
}

uint64_t fromDouble(double D) {
  uint64_t W;
  std::memcpy(&W, &D, sizeof(W));
  return W;
}

/// Return-address words: ((func+1) << 32) | pc, stored raw. Zero is the
/// "return to host" sentinel.
uint64_t makeRetWord(int Func, int Pc) {
  return (static_cast<uint64_t>(Func + 1) << 32) | static_cast<uint32_t>(Pc);
}

} // namespace

Machine::Machine(const Program &P, sexpr::SymbolTable &Syms,
                 sexpr::Heap &DecodeHeap)
    : P(P), Syms(Syms), DecodeHeap(DecodeHeap) {
  // Load the static image (the rest of the address space starts zeroed).
  for (size_t I = 0; I < P.Static.size(); ++I)
    Memory[StaticBase + I] = P.Static[I];
  SymbolAddr = P.SymbolAddr;
  for (auto &[Sym, Addr] : P.SymbolAddr)
    AddrSymbol[Addr] = Sym;
  for (auto &[Addr, Str] : P.StringAddr)
    StringContents[Addr] = Str;
}

uint64_t &Machine::mem(uint64_t Addr) {
  static uint64_t Garbage = 0;
  if (Addr >= Memory.size()) {
    Halted = true; // step() reports the trap
    return Garbage;
  }
  return Memory[Addr];
}

uint64_t Machine::symbolWord(const sexpr::Symbol *S) {
  auto It = SymbolAddr.find(S);
  if (It != SymbolAddr.end())
    return makePointer(Tag::Symbol, It->second);
  // Symbols unknown to the compiled image get a fresh heap cell.
  uint64_t W = allocate(Tag::Symbol, 1);
  mem(addrOf(W)) = UnboundWord;
  SymbolAddr[S] = addrOf(W);
  AddrSymbol[addrOf(W)] = S;
  return W;
}

uint64_t Machine::allocate(Tag T, uint64_t NWords) {
  if (HeapTop + NWords > HeapBase + HeapWords) {
    Halted = true;
    return NilWord;
  }
  uint64_t Addr = HeapTop;
  HeapTop += NWords;
  ++Stats.HeapObjects;
  Stats.HeapWordsUsed += NWords;
  return makePointer(T, Addr);
}

uint64_t Machine::boxFlonum(double D) {
  uint64_t W = allocate(Tag::SingleFlonum, 1);
  mem(addrOf(W)) = fromDouble(D);
  return W;
}

uint64_t Machine::encode(Value V) {
  switch (V.kind()) {
  case sexpr::ValueKind::Nil:
    return NilWord;
  case sexpr::ValueKind::Fixnum:
    assert(V.fixnum() >= INT32_MIN && V.fixnum() <= INT32_MAX &&
           "compiled fixnums are 32-bit immediates");
    return makeFixnum(V.fixnum());
  case sexpr::ValueKind::Flonum:
    return boxFlonum(V.flonum());
  case sexpr::ValueKind::Symbol:
    return symbolWord(V.symbol());
  case sexpr::ValueKind::Ratio: {
    uint64_t W = allocate(Tag::Ratio, 2);
    mem(addrOf(W)) = static_cast<uint64_t>(V.ratio().Num);
    mem(addrOf(W) + 1) = static_cast<uint64_t>(V.ratio().Den);
    return W;
  }
  case sexpr::ValueKind::String: {
    uint64_t W = allocate(Tag::String, 1);
    mem(addrOf(W)) = V.stringValue().size();
    StringContents[addrOf(W)] = V.stringValue();
    return W;
  }
  case sexpr::ValueKind::Cons: {
    uint64_t Car = encode(V.car());
    uint64_t Cdr = encode(V.cdr());
    uint64_t W = allocate(Tag::Cons, 2);
    mem(addrOf(W)) = Car;
    mem(addrOf(W) + 1) = Cdr;
    return W;
  }
  }
  return NilWord;
}

std::optional<Value> Machine::decode(uint64_t Word, unsigned Depth) {
  if (Depth == 0)
    return std::nullopt;
  switch (tagOf(Word)) {
  case Tag::Nil:
    return Value::nil();
  case Tag::Fixnum:
    return Value::fixnum(fixnumValue(Word));
  case Tag::SingleFlonum:
    return Value::flonum(asDouble(Memory[addrOf(Word)]));
  case Tag::Symbol: {
    auto It = AddrSymbol.find(addrOf(Word));
    if (It == AddrSymbol.end())
      return std::nullopt;
    return Value::symbol(It->second);
  }
  case Tag::Ratio:
    return DecodeHeap.makeRatio(static_cast<int64_t>(Memory[addrOf(Word)]),
                                static_cast<int64_t>(Memory[addrOf(Word) + 1]));
  case Tag::String: {
    auto It = StringContents.find(addrOf(Word));
    if (It == StringContents.end())
      return std::nullopt;
    return DecodeHeap.string(It->second);
  }
  case Tag::Cons: {
    auto Car = decode(Memory[addrOf(Word)], Depth - 1);
    auto Cdr = decode(Memory[addrOf(Word) + 1], Depth - 1);
    if (!Car || !Cdr)
      return std::nullopt;
    return DecodeHeap.cons(*Car, *Cdr);
  }
  default:
    return std::nullopt;
  }
}

bool Machine::setGlobalSpecial(const sexpr::Symbol *Name, Value V) {
  uint64_t SymW = symbolWord(Name);
  mem(addrOf(SymW)) = encode(V);
  return true;
}

uint64_t Machine::makeArrayF(size_t Dim0, size_t Dim1) {
  bool Rank2 = Dim1 != 0;
  size_t D1 = Rank2 ? Dim1 : 1;
  uint64_t W = allocate(Tag::ArrayF, 3 + Dim0 * D1);
  mem(addrOf(W)) = Dim0;
  mem(addrOf(W) + 1) = D1;
  mem(addrOf(W) + 2) = Rank2;
  for (size_t I = 0; I < Dim0 * D1; ++I)
    mem(addrOf(W) + 3 + I) = fromDouble(0.0);
  return W;
}

double Machine::readArrayF(uint64_t ArrayWord, size_t I, size_t J) {
  uint64_t Base = addrOf(ArrayWord);
  return asDouble(Memory[Base + 3 + I * Memory[Base + 1] + J]);
}

void Machine::writeArrayF(uint64_t ArrayWord, size_t I, size_t J, double V) {
  uint64_t Base = addrOf(ArrayWord);
  Memory[Base + 3 + I * Memory[Base + 1] + J] = fromDouble(V);
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void Machine::publishStats() const {
  VmInstructions += Stats.Instructions;
  VmMovs += Stats.Movs;
  VmCalls += Stats.Calls;
  VmTailCalls += Stats.TailCalls;
  VmSyscalls += Stats.Syscalls;
  VmHeapObjects += Stats.HeapObjects;
  VmHeapWords += Stats.HeapWordsUsed;
  VmStackHighWater.updateMax(Stats.StackHighWater);
  VmSpecialSearches += Stats.SpecialSearches;
  VmSpecialSearchSteps += Stats.SpecialSearchSteps;
}

Machine::RunResult Machine::call(const std::string &Name,
                                 const std::vector<Value> &Args) {
  stats::PhaseTimer Timer("vm.run");
  RunResult R;
  int Idx = P.indexOf(Name);
  if (Idx < 0) {
    R.Error = "undefined compiled function '" + Name + "'";
    return R;
  }
  Regs.fill(0);
  Regs[SP] = StackBase;
  Regs[FP] = StackBase;
  Regs[ENV] = NilWord;
  SpecTop = SpecBase;
  Catches.clear();
  Halted = false;

  for (Value A : Args)
    push(encode(A));
  Regs[RTA] = Args.size();
  push(makeRetWord(-1, 0)); // sentinel: return to host

  std::string Error;
  if (!run(Idx, Error)) {
    R.Error = Error;
    return R;
  }
  R.Ok = true;
  R.ResultWord = Regs[RV];
  R.Result = decode(Regs[RV]);
  return R;
}

void Machine::push(uint64_t W) {
  mem(Regs[SP]) = W;
  ++Regs[SP];
  Stats.StackHighWater = std::max(Stats.StackHighWater, Regs[SP] - StackBase);
}

uint64_t Machine::pop() {
  --Regs[SP];
  return mem(Regs[SP]);
}

bool Machine::trap(std::string &Error, const std::string &Msg) {
  Error = Msg;
  if (CurFunc >= 0 && CurFunc < static_cast<int>(P.Functions.size()))
    Error += " [in " + P.Functions[CurFunc].Name + " at pc " +
             std::to_string(Pc) + "]";
  Halted = true;
  return false;
}

bool Machine::run(int FuncIndex, std::string &Error) {
  CurFunc = FuncIndex;
  Pc = 0;
  while (!Halted) {
    if (Stats.Instructions >= Fuel)
      return trap(Error, "instruction fuel exhausted");
    if (!step(Error))
      return false;
    if (CurFunc == -1)
      return true; // returned to host
  }
  return trap(Error, "machine halted unexpectedly (memory fault or heap full)");
}

uint64_t Machine::effectiveAddress(const Operand &O) {
  assert(O.M == Operand::Mode::Mem && "EA of a non-memory operand");
  uint64_t Base = addrOf(Regs[O.R]);
  int64_t Idx = 0;
  if (O.Index != 0xFF)
    Idx = static_cast<int64_t>(Regs[O.Index]) << O.Scale;
  return Base + static_cast<uint64_t>(O.Imm + Idx);
}

uint64_t Machine::read(const Operand &O) {
  switch (O.M) {
  case Operand::Mode::Reg:
    return Regs[O.R];
  case Operand::Mode::Imm:
    return static_cast<uint64_t>(O.Imm);
  case Operand::Mode::FImm:
    return fromDouble(O.F);
  case Operand::Mode::Mem:
    return mem(effectiveAddress(O));
  default:
    assert(false && "unreadable operand");
    return 0;
  }
}

void Machine::write(const Operand &O, uint64_t V) {
  switch (O.M) {
  case Operand::Mode::Reg:
    Regs[O.R] = V;
    return;
  case Operand::Mode::Mem:
    mem(effectiveAddress(O)) = V;
    return;
  default:
    assert(false && "unwritable operand");
  }
}

bool Machine::step(std::string &Error) {
  const AsmFunction &F = P.Functions[CurFunc];
  if (Pc < 0 || Pc >= static_cast<int>(F.Code.size()))
    return trap(Error, "pc out of range");
  const Instruction &I = F.Code[Pc++];
  ++Stats.Instructions;
  Stats.PerOpcode[static_cast<size_t>(I.Op)]++;

  auto CondHolds = [](Cond C, int64_t Sign) {
    switch (C) {
    case Cond::EQ:
      return Sign == 0;
    case Cond::NEQ:
      return Sign != 0;
    case Cond::LT:
      return Sign < 0;
    case Cond::GT:
      return Sign > 0;
    case Cond::LE:
      return Sign <= 0;
    case Cond::GE:
      return Sign >= 0;
    }
    return false;
  };

  switch (I.Op) {
  case Opcode::LABEL:
    return true;
  case Opcode::HALT:
    return trap(Error, "HALT executed");

  case Opcode::MOV:
    ++Stats.Movs;
    write(I.A, read(I.B));
    return true;

  case Opcode::MOVTAG: {
    uint64_t Addr = I.B.M == Operand::Mode::Mem ? effectiveAddress(I.B)
                                                : addrOf(read(I.B));
    write(I.A, makePointer(static_cast<Tag>(I.X.Imm), Addr));
    return true;
  }

  case Opcode::GETTAG:
    write(I.A, static_cast<uint64_t>(tagOf(read(I.B))));
    return true;

  case Opcode::LEA:
    write(I.A, effectiveAddress(I.B));
    return true;

  case Opcode::PUSH:
    if (Regs[SP] + 1 >= StackBase + StackWords)
      return trap(Error, "stack overflow");
    push(read(I.A));
    return true;

  case Opcode::POP:
    write(I.A, pop());
    return true;

  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::MULT:
  case Opcode::DIV: {
    bool TwoOp = I.X.M == Operand::Mode::None;
    int64_t A = static_cast<int64_t>(read(TwoOp ? I.A : I.B));
    int64_t B = static_cast<int64_t>(read(TwoOp ? I.B : I.X));
    int64_t R;
    switch (I.Op) {
    case Opcode::ADD:
      R = A + B;
      break;
    case Opcode::SUB:
      R = A - B;
      break;
    case Opcode::MULT:
      R = A * B;
      break;
    default:
      if (B == 0)
        return trap(Error, rtErrorMessage(RtError::DivisionByZero));
      R = A / B;
      break;
    }
    write(I.A, static_cast<uint64_t>(R));
    return true;
  }

  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMULT:
  case Opcode::FDIV:
  case Opcode::FMAX:
  case Opcode::FMIN: {
    bool TwoOp = I.X.M == Operand::Mode::None;
    double A = asDouble(read(TwoOp ? I.A : I.B));
    double B = asDouble(read(TwoOp ? I.B : I.X));
    double R;
    switch (I.Op) {
    case Opcode::FADD:
      R = A + B;
      break;
    case Opcode::FSUB:
      R = A - B;
      break;
    case Opcode::FMULT:
      R = A * B;
      break;
    case Opcode::FDIV:
      R = A / B;
      break;
    case Opcode::FMAX:
      R = std::max(A, B);
      break;
    default:
      R = std::min(A, B);
      break;
    }
    write(I.A, fromDouble(R));
    return true;
  }

  case Opcode::FNEG:
  case Opcode::FABS:
  case Opcode::FSQRT:
  case Opcode::FSIN:
  case Opcode::FCOS:
  case Opcode::FEXP:
  case Opcode::FLOG: {
    double X = asDouble(read(I.B));
    double R;
    switch (I.Op) {
    case Opcode::FNEG:
      R = -X;
      break;
    case Opcode::FABS:
      R = std::fabs(X);
      break;
    case Opcode::FSQRT:
      R = std::sqrt(X);
      break;
    case Opcode::FSIN:
      R = std::sin(X * 2.0 * M_PI); // the S-1 trig unit takes cycles
      break;
    case Opcode::FCOS:
      R = std::cos(X * 2.0 * M_PI);
      break;
    case Opcode::FEXP:
      R = std::exp(X);
      break;
    default:
      R = std::log(X);
      break;
    }
    write(I.A, fromDouble(R));
    return true;
  }

  case Opcode::FATAN: {
    double Y = asDouble(read(I.B));
    double X = asDouble(read(I.X));
    write(I.A, fromDouble(std::atan2(Y, X)));
    return true;
  }

  case Opcode::ITOF:
    write(I.A, fromDouble(static_cast<double>(static_cast<int64_t>(read(I.B)))));
    return true;
  case Opcode::FTOI:
    write(I.A, static_cast<uint64_t>(static_cast<int64_t>(asDouble(read(I.B)))));
    return true;

  case Opcode::JMPA:
    Pc = F.LabelPos[I.A.Label] ;
    return true;

  case Opcode::JMPZ: {
    int64_t A = static_cast<int64_t>(read(I.A));
    int64_t B = static_cast<int64_t>(read(I.B));
    int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
    if (CondHolds(I.C, Sign))
      Pc = F.LabelPos[I.X.Label];
    return true;
  }

  case Opcode::FJMPZ: {
    double A = asDouble(read(I.A));
    double B = asDouble(read(I.B));
    int64_t Sign = A < B ? -1 : (A > B ? 1 : 0);
    if ((std::isnan(A) || std::isnan(B)) ? I.C == Cond::NEQ : CondHolds(I.C, Sign))
      Pc = F.LabelPos[I.X.Label];
    return true;
  }

  case Opcode::CALL: {
    ++Stats.Calls;
    if (Regs[SP] + 4 >= StackBase + StackWords)
      return trap(Error, "stack overflow");
    push(makeRetWord(CurFunc, Pc));
    CurFunc = static_cast<int>(I.A.Imm);
    Pc = 0;
    return true;
  }

  case Opcode::CALLPTR: {
    ++Stats.Calls;
    uint64_t Fn = read(I.A);
    if (tagOf(Fn) != Tag::Function)
      return trap(Error, rtErrorMessage(RtError::NotAFunction));
    Regs[1] = mem(addrOf(Fn) + 1); // closure environment for the prologue
    push(makeRetWord(CurFunc, Pc));
    CurFunc = static_cast<int>(mem(addrOf(Fn)));
    Pc = 0;
    return true;
  }

  case Opcode::TAILCALL:
  case Opcode::TAILCALLPTR: {
    ++Stats.TailCalls;
    int Target;
    uint64_t K;
    if (I.Op == Opcode::TAILCALL) {
      K = static_cast<uint64_t>(I.A.Imm);
      Target = static_cast<int>(I.B.Imm);
    } else {
      K = static_cast<uint64_t>(I.B.Imm);
      uint64_t Fn = read(I.A);
      if (tagOf(Fn) != Tag::Function)
        return trap(Error, rtErrorMessage(RtError::NotAFunction));
      Regs[1] = mem(addrOf(Fn) + 1);
      Target = static_cast<int>(mem(addrOf(Fn)));
    }
    // New args were computed at the stack top. The original caller pops
    // exactly the arguments it pushed after the eventual return, so the
    // return word must stay put at FP-2 no matter how many arguments this
    // activation received: the K new arguments are placed right-justified
    // against it. Codegen only emits a tail call when K is at most the
    // current function's minimum arity, so they always fit inside the
    // activation's own argument area (slot FP+1 holds the received count).
    if (K > mem(Regs[FP] + 1))
      return trap(Error, "tail call passes more arguments than the frame holds");
    uint64_t ArgBase = Regs[FP] - 2 - K;
    uint64_t OldFp = mem(Regs[FP] - 1);
    Regs[ENV] = mem(Regs[FP] + 0);
    for (uint64_t J = 0; J < K; ++J)
      mem(ArgBase + J) = mem(Regs[SP] - K + J);
    Regs[SP] = Regs[FP] - 1;
    Regs[FP] = OldFp;
    Regs[RTA] = K;
    CurFunc = Target;
    Pc = 0;
    return true;
  }

  case Opcode::RET: {
    uint64_t RetW = pop();
    if (RetW == makeRetWord(-1, 0)) {
      CurFunc = -1; // back to host
      return true;
    }
    CurFunc = static_cast<int>((RetW >> 32) - 1);
    Pc = static_cast<int>(RetW & 0xFFFFFFFF);
    return true;
  }

  case Opcode::ALLOC: {
    uint64_t W = allocate(static_cast<Tag>(I.B.Imm), static_cast<uint64_t>(I.X.Imm));
    if (Halted)
      return trap(Error, "heap exhausted");
    write(I.A, W);
    return true;
  }

  case Opcode::SYSCALL:
    ++Stats.Syscalls;
    return doSyscall(static_cast<Syscall>(I.A.Imm), Error);
  }
  return trap(Error, "unimplemented opcode");
}

//===----------------------------------------------------------------------===//
// Runtime services
//===----------------------------------------------------------------------===//

bool Machine::wordEql(uint64_t A, uint64_t B) {
  if (A == B)
    return true;
  if (tagOf(A) != tagOf(B))
    return false;
  switch (tagOf(A)) {
  case Tag::SingleFlonum:
    return asDouble(Memory[addrOf(A)]) == asDouble(Memory[addrOf(B)]);
  case Tag::Ratio:
    return Memory[addrOf(A)] == Memory[addrOf(B)] &&
           Memory[addrOf(A) + 1] == Memory[addrOf(B) + 1];
  default:
    return false;
  }
}

uint64_t Machine::certify(uint64_t W) {
  uint64_t Addr = addrOf(W);
  if (!isStackAddress(Addr))
    return W;
  switch (tagOf(W)) {
  case Tag::SingleFlonum: {
    uint64_t NewW = allocate(Tag::SingleFlonum, 1);
    mem(addrOf(NewW)) = Memory[Addr];
    return NewW;
  }
  case Tag::Ratio: {
    uint64_t NewW = allocate(Tag::Ratio, 2);
    mem(addrOf(NewW)) = Memory[Addr];
    mem(addrOf(NewW) + 1) = Memory[Addr + 1];
    return NewW;
  }
  default:
    return W;
  }
}

bool Machine::doSyscall(Syscall S, std::string &Error) {
  const Instruction &I = P.Functions[CurFunc].Code[Pc - 1];

  auto DecodeNum = [this](uint64_t W) -> std::optional<Value> {
    switch (tagOf(W)) {
    case Tag::Fixnum:
      return Value::fixnum(fixnumValue(W));
    case Tag::SingleFlonum:
      return Value::flonum(asDouble(Memory[addrOf(W)]));
    case Tag::Ratio:
      return DecodeHeap.makeRatio(static_cast<int64_t>(Memory[addrOf(W)]),
                                  static_cast<int64_t>(Memory[addrOf(W) + 1]));
    default:
      return std::nullopt;
    }
  };
  auto EncodeNum = [this, &Error](Value V, bool &Ok) -> uint64_t {
    Ok = true;
    switch (V.kind()) {
    case sexpr::ValueKind::Fixnum:
      if (V.fixnum() < INT32_MIN || V.fixnum() > INT32_MAX) {
        Ok = trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
        return NilWord;
      }
      return makeFixnum(V.fixnum());
    case sexpr::ValueKind::Flonum:
      return boxFlonum(V.flonum());
    case sexpr::ValueKind::Ratio: {
      uint64_t W = allocate(Tag::Ratio, 2);
      mem(addrOf(W)) = static_cast<uint64_t>(V.ratio().Num);
      mem(addrOf(W) + 1) = static_cast<uint64_t>(V.ratio().Den);
      return W;
    }
    default:
      Ok = trap(Error, "non-numeric result");
      return NilWord;
    }
  };
  auto TBool = [this](bool B) {
    Regs[RV] = B ? symbolWord(Syms.t()) : NilWord;
  };
  auto TypeError = [this, &Error] {
    return trap(Error, rtErrorMessage(RtError::WrongTypeOfArgument));
  };

  switch (S) {
  case Syscall::GenericAdd:
  case Syscall::GenericSub:
  case Syscall::GenericMul:
  case Syscall::GenericDiv:
  case Syscall::GenericArith2: {
    uint64_t BW = pop(), AW = pop();
    auto A = DecodeNum(AW), B = DecodeNum(BW);
    if (!A || !B)
      return TypeError();
    sexpr::ArithOp Op;
    switch (S) {
    case Syscall::GenericAdd:
      Op = sexpr::ArithOp::Add;
      break;
    case Syscall::GenericSub:
      Op = sexpr::ArithOp::Sub;
      break;
    case Syscall::GenericMul:
      Op = sexpr::ArithOp::Mul;
      break;
    case Syscall::GenericDiv:
      Op = sexpr::ArithOp::Div;
      break;
    default:
      switch (static_cast<ArithCode>(I.B.Imm)) {
      case ArithCode::Floor:
        Op = sexpr::ArithOp::Floor;
        break;
      case ArithCode::Ceiling:
        Op = sexpr::ArithOp::Ceiling;
        break;
      case ArithCode::Truncate:
        Op = sexpr::ArithOp::Truncate;
        break;
      case ArithCode::Round:
        Op = sexpr::ArithOp::Round;
        break;
      case ArithCode::Mod:
        Op = sexpr::ArithOp::Mod;
        break;
      case ArithCode::Rem:
        Op = sexpr::ArithOp::Rem;
        break;
      case ArithCode::Expt:
        Op = sexpr::ArithOp::Expt;
        break;
      case ArithCode::Max:
        Op = sexpr::ArithOp::Max;
        break;
      default:
        Op = sexpr::ArithOp::Min;
        break;
      }
      break;
    }
    auto R = sexpr::arith(DecodeHeap, Op, *A, *B);
    if (!R)
      return TypeError();
    bool Ok;
    Regs[RV] = EncodeNum(*R, Ok);
    return Ok;
  }

  case Syscall::GenericUnary: {
    uint64_t AW = pop();
    auto A = DecodeNum(AW);
    if (!A)
      return TypeError();
    std::optional<Value> R;
    switch (static_cast<UnaryCode>(I.B.Imm)) {
    case UnaryCode::Neg:
      R = sexpr::negate(DecodeHeap, *A);
      break;
    case UnaryCode::Abs:
      R = sexpr::numAbs(DecodeHeap, *A);
      break;
    case UnaryCode::Add1:
      R = sexpr::add1(DecodeHeap, *A);
      break;
    case UnaryCode::Sub1:
      R = sexpr::sub1(DecodeHeap, *A);
      break;
    case UnaryCode::Sqrt: {
      auto D = sexpr::toDouble(*A);
      if (D && *D >= 0)
        R = Value::flonum(std::sqrt(*D));
      break;
    }
    case UnaryCode::ToFloat: {
      auto D = sexpr::toDouble(*A);
      if (D)
        R = Value::flonum(*D);
      break;
    }
    }
    if (!R)
      return TypeError();
    bool Ok;
    Regs[RV] = EncodeNum(*R, Ok);
    return Ok;
  }

  case Syscall::GenericCompare: {
    uint64_t BW = pop(), AW = pop();
    auto A = DecodeNum(AW), B = DecodeNum(BW);
    if (!A || !B)
      return TypeError();
    sexpr::CompareOp Op;
    switch (static_cast<Cond>(I.B.Imm)) {
    case Cond::EQ:
      Op = sexpr::CompareOp::Eq;
      break;
    case Cond::NEQ:
      Op = sexpr::CompareOp::Ne;
      break;
    case Cond::LT:
      Op = sexpr::CompareOp::Lt;
      break;
    case Cond::GT:
      Op = sexpr::CompareOp::Gt;
      break;
    case Cond::LE:
      Op = sexpr::CompareOp::Le;
      break;
    default:
      Op = sexpr::CompareOp::Ge;
      break;
    }
    auto R = sexpr::compare(Op, *A, *B);
    if (!R)
      return TypeError();
    TBool(*R);
    return true;
  }

  case Syscall::GenericNumPred: {
    uint64_t AW = pop();
    auto A = DecodeNum(AW);
    if (!A)
      return TypeError();
    std::optional<bool> R;
    switch (static_cast<PredCode>(I.B.Imm)) {
    case PredCode::Zerop:
      R = sexpr::isZero(*A);
      break;
    case PredCode::Oddp:
      R = sexpr::isOdd(*A);
      break;
    case PredCode::Evenp:
      R = sexpr::isEven(*A);
      break;
    case PredCode::Plusp:
      R = sexpr::isPlus(*A);
      break;
    default:
      R = sexpr::isMinus(*A);
      break;
    }
    if (!R)
      return TypeError();
    TBool(*R);
    return true;
  }

  case Syscall::ConsFlonum:
    Regs[RV] = boxFlonum(asDouble(pop()));
    return true;

  case Syscall::ConsFixnum: {
    int64_t V = static_cast<int64_t>(pop());
    if (V < INT32_MIN || V > INT32_MAX)
      return trap(Error, "fixnum overflow (compiled fixnums are 32-bit)");
    Regs[RV] = makeFixnum(V);
    return true;
  }

  case Syscall::UnboxFloat: {
    uint64_t W = pop();
    auto A = DecodeNum(W);
    auto D = A ? sexpr::toDouble(*A) : std::nullopt;
    if (!D)
      return TypeError();
    Regs[RV] = fromDouble(*D);
    return true;
  }

  case Syscall::UnboxFixnum: {
    uint64_t W = pop();
    if (tagOf(W) != Tag::Fixnum)
      return TypeError();
    Regs[RV] = static_cast<uint64_t>(fixnumValue(W));
    return true;
  }

  case Syscall::Cons: {
    uint64_t Cdr = pop(), Car = pop();
    uint64_t W = allocate(Tag::Cons, 2);
    mem(addrOf(W)) = Car;
    mem(addrOf(W) + 1) = Cdr;
    Regs[RV] = W;
    return true;
  }

  case Syscall::ListPrim: {
    ListCode Code = static_cast<ListCode>(I.B.Imm);
    auto IsList = [this](uint64_t W) {
      return tagOf(W) == Tag::Nil || tagOf(W) == Tag::Cons;
    };
    auto CarOf = [this](uint64_t W) {
      return tagOf(W) == Tag::Cons ? Memory[addrOf(W)] : NilWord;
    };
    auto CdrOf = [this](uint64_t W) {
      return tagOf(W) == Tag::Cons ? Memory[addrOf(W) + 1] : NilWord;
    };
    switch (Code) {
    case ListCode::Length: {
      uint64_t L = pop();
      if (tagOf(L) == Tag::String) {
        Regs[RV] = makeFixnum(static_cast<int64_t>(Memory[addrOf(L)]));
        return true;
      }
      if (!IsList(L))
        return TypeError();
      int64_t N = 0;
      while (tagOf(L) == Tag::Cons) {
        ++N;
        L = CdrOf(L);
      }
      Regs[RV] = makeFixnum(N);
      return true;
    }
    case ListCode::Reverse: {
      uint64_t L = pop();
      if (!IsList(L))
        return TypeError();
      uint64_t R = NilWord;
      while (tagOf(L) == Tag::Cons) {
        uint64_t W = allocate(Tag::Cons, 2);
        mem(addrOf(W)) = CarOf(L);
        mem(addrOf(W) + 1) = R;
        R = W;
        L = CdrOf(L);
      }
      Regs[RV] = R;
      return true;
    }
    case ListCode::Append2: {
      uint64_t B = pop(), A = pop();
      if (!IsList(A))
        return TypeError();
      std::vector<uint64_t> Items;
      for (uint64_t L = A; tagOf(L) == Tag::Cons; L = CdrOf(L))
        Items.push_back(CarOf(L));
      uint64_t R = B;
      for (size_t J = Items.size(); J > 0; --J) {
        uint64_t W = allocate(Tag::Cons, 2);
        mem(addrOf(W)) = Items[J - 1];
        mem(addrOf(W) + 1) = R;
        R = W;
      }
      Regs[RV] = R;
      return true;
    }
    case ListCode::Member: {
      uint64_t L = pop(), X = pop();
      while (tagOf(L) == Tag::Cons) {
        if (wordEql(CarOf(L), X)) {
          Regs[RV] = L;
          return true;
        }
        L = CdrOf(L);
      }
      Regs[RV] = NilWord;
      return true;
    }
    case ListCode::Assoc: {
      uint64_t L = pop(), X = pop();
      while (tagOf(L) == Tag::Cons) {
        uint64_t Pair = CarOf(L);
        if (tagOf(Pair) == Tag::Cons && wordEql(CarOf(Pair), X)) {
          Regs[RV] = Pair;
          return true;
        }
        L = CdrOf(L);
      }
      Regs[RV] = NilWord;
      return true;
    }
    case ListCode::Nth:
    case ListCode::NthCdr: {
      uint64_t L = pop(), NW = pop();
      if (tagOf(NW) != Tag::Fixnum)
        return TypeError();
      for (int64_t J = 0; J < fixnumValue(NW) && tagOf(L) == Tag::Cons; ++J)
        L = CdrOf(L);
      Regs[RV] = Code == ListCode::Nth ? CarOf(L) : L;
      return true;
    }
    case ListCode::Last: {
      uint64_t L = pop();
      while (tagOf(L) == Tag::Cons && tagOf(CdrOf(L)) == Tag::Cons)
        L = CdrOf(L);
      Regs[RV] = L;
      return true;
    }
    case ListCode::Equal: {
      uint64_t B = pop(), A = pop();
      // Structural equality via decode (bounded).
      auto DA = decode(A), DB = decode(B);
      if (DA && DB)
        TBool(sexpr::equal(*DA, *DB));
      else
        TBool(wordEql(A, B));
      return true;
    }
    case ListCode::ListN: {
      int64_t N = I.X.Imm;
      uint64_t R = NilWord;
      for (int64_t J = 0; J < N; ++J) {
        uint64_t W = allocate(Tag::Cons, 2);
        mem(addrOf(W)) = pop(); // rightmost argument first
        mem(addrOf(W) + 1) = R;
        R = W;
      }
      Regs[RV] = R;
      return true;
    }
    }
    return trap(Error, "bad list primitive");
  }

  case Syscall::Certify:
    Regs[RV] = certify(pop());
    return true;

  case Syscall::SpecBind: {
    uint64_t V = pop(), Sym = pop();
    mem(SpecTop) = Sym;
    mem(SpecTop + 1) = V;
    SpecTop += 2;
    return true;
  }

  case Syscall::SpecUnbind:
    SpecTop -= 2 * static_cast<uint64_t>(I.B.Imm);
    return true;

  case Syscall::SpecLookup: {
    uint64_t Sym = pop();
    ++Stats.SpecialSearches;
    for (uint64_t A = SpecTop; A > SpecBase; A -= 2) {
      ++Stats.SpecialSearchSteps;
      if (mem(A - 2) == Sym) {
        Regs[RV] = A - 1;
        return true;
      }
    }
    // Fall back to the symbol's global value cell. An unbound cell is
    // still a valid cache target: reads check for UnboundWord, and a setq
    // through it creates the global binding.
    Regs[RV] = addrOf(Sym);
    return true;
  }

  case Syscall::MakeClosure: {
    uint64_t Env = pop();
    uint64_t W = allocate(Tag::Function, 2);
    mem(addrOf(W)) = static_cast<uint64_t>(I.B.Imm);
    mem(addrOf(W) + 1) = Env;
    Regs[RV] = W;
    return true;
  }

  case Syscall::MakeEnv: {
    uint64_t Parent = pop();
    uint64_t Size = static_cast<uint64_t>(I.B.Imm);
    uint64_t W = allocate(Tag::Environment, 1 + Size);
    mem(addrOf(W)) = Parent;
    Regs[RV] = W;
    return true;
  }

  case Syscall::MakeRestList: {
    uint64_t Count = pop();
    uint64_t Base = pop();
    uint64_t R = NilWord;
    for (uint64_t J = Count; J > 0; --J) {
      uint64_t W = allocate(Tag::Cons, 2);
      mem(addrOf(W)) = mem(Base + J - 1);
      mem(addrOf(W) + 1) = R;
      R = W;
    }
    Regs[RV] = R;
    return true;
  }

  case Syscall::SpreadList: {
    uint64_t L = pop();
    uint64_t N = 0;
    while (tagOf(L) == Tag::Cons) {
      push(Memory[addrOf(L)]);
      L = Memory[addrOf(L) + 1];
      ++N;
    }
    if (tagOf(L) != Tag::Nil)
      return TypeError();
    Regs[RV] = N;
    return true;
  }

  case Syscall::ArrayMake: {
    uint64_t D1W = pop(), D0W = pop();
    if (tagOf(D0W) != Tag::Fixnum || fixnumValue(D0W) < 0)
      return TypeError();
    size_t D1 = 0;
    if (tagOf(D1W) == Tag::Fixnum) {
      if (fixnumValue(D1W) < 0)
        return TypeError();
      D1 = static_cast<size_t>(fixnumValue(D1W));
    } else if (tagOf(D1W) != Tag::Nil) {
      return TypeError();
    }
    Regs[RV] = makeArrayF(static_cast<size_t>(fixnumValue(D0W)), D1);
    return true;
  }

  case Syscall::Error:
    return trap(Error, rtErrorMessage(static_cast<RtError>(I.B.Imm)));

  case Syscall::Print: {
    uint64_t W = pop();
    auto V = decode(W);
    Out += V ? sexpr::toString(*V)
             : (tagOf(W) == Tag::Function ? "#<function>" : "#<object>");
    Out += '\n';
    Regs[RV] = W;
    return true;
  }

  case Syscall::Throw: {
    uint64_t V = pop(), TagW = pop();
    for (size_t J = Catches.size(); J > 0; --J) {
      CatchFrame &C = Catches[J - 1];
      if (wordEql(C.TagWord, TagW)) {
        Regs[SP] = C.Sp;
        Regs[FP] = C.Fp;
        Regs[ENV] = C.Env;
        SpecTop = SpecBase + 2 * C.SpecDepth;
        CurFunc = C.Func;
        Pc = C.Pc;
        Regs[RV] = V;
        Catches.resize(C.CatchDepth);
        return true;
      }
    }
    return trap(Error, rtErrorMessage(RtError::UncaughtThrow));
  }

  case Syscall::PushCatch: {
    uint64_t TagW = pop();
    CatchFrame C;
    C.TagWord = TagW;
    C.Func = CurFunc;
    C.Pc = P.Functions[CurFunc].LabelPos[static_cast<int>(I.B.Imm)];
    C.Sp = Regs[SP];
    C.Fp = Regs[FP];
    C.Env = Regs[ENV];
    C.SpecDepth = (SpecTop - SpecBase) / 2;
    C.CatchDepth = Catches.size();
    Catches.push_back(C);
    return true;
  }

  case Syscall::PopCatch:
    if (!Catches.empty())
      Catches.pop_back();
    return true;
  }
  return trap(Error, "unimplemented syscall");
}
