//===- vm/Predecode.h - Pre-decoded internal program form -------*- C++ -*-===//
///
/// \file
/// Lowers an assembled s1::Program into the dense internal form executed
/// by the simulator's threaded dispatch engine:
///
///  * LABEL pseudo-ops are stripped and every branch target is resolved to
///    a decoded instruction index, so the hot loop never skips pseudo-ops;
///  * operand addressing modes are specialized into fused handler variants
///    (MovRR, MovRK, PushM, JmpzRK, ...) so the per-operand mode switch of
///    the legacy interpreter disappears from the hot path — immediates,
///    including float immediates, are pre-folded into raw machine words;
///  * catch handler labels and call targets are resolved at decode time.
///
/// Decoding is a pure function of the Program; a DecodedProgram is
/// immutable after construction and can be shared (shared_ptr) by any
/// number of Machines running concurrently, which is how the parallel
/// differential fuzzer amortizes decode cost across an argument grid.
///
/// The decoded form preserves the architectural counter semantics of the
/// legacy engine exactly: each decoded instruction remembers its original
/// opcode for the PerOpcode histogram, and the decoded index of "one past
/// the last real instruction" reproduces the legacy "pc out of range"
/// trap for control that falls off the end through trailing labels.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_VM_PREDECODE_H
#define S1LISP_VM_PREDECODE_H

#include "s1/Isa.h"

#include <memory>
#include <vector>

namespace s1lisp {
namespace vm {

/// Fused handler selectors. Naming: operand shapes are R (register),
/// K (constant word, immediates pre-folded), M (memory base+displacement),
/// X (memory base+displacement+scaled index), G (generic pre-decoded
/// operand, for the cold opcodes).
enum class XOp : uint8_t {
  // MOV dst,src — the §6.1 workhorse, fully split by mode pair.
  MovRR, MovRK, MovRM, MovRX,
  MovMR, MovMK, MovMM, MovMX,
  MovXR, MovXK, MovXM, MovXX,
  // Stack traffic.
  PushR, PushK, PushM, PushX,
  PopR, PopM,
  // Integer ALU: two-op register destination forms are hot (SP bumps,
  // loop counters); everything else goes through the generic forms.
  AddRR, AddRK, SubRR, SubRK,
  Alu2G, Alu3G,
  // Conditional/unconditional control, targets pre-resolved.
  Jmp, JmpzRR, JmpzRK, JmpzG, FJmpzG,
  Call, CallPtr, TailCall, TailCallPtr, Ret,
  // Cold ops, executed over generic pre-decoded operands.
  MovTag, GetTag, Lea,
  FAlu2, FAlu3, FUnary, FAtan, Itof, Ftoi,
  Alloc, Syscall, Halt,
};

/// A pre-decoded memory reference: base register + word displacement
/// [+ index register << scale].
struct XMem {
  uint8_t Base = 0;
  uint8_t Index = 0xFF; ///< 0xFF = none
  uint8_t Scale = 0;
  int64_t Disp = 0;
};

/// A generic pre-decoded operand for the cold handlers: the mode switch
/// is down to four dense cases (no Label/None), and immediates — float
/// immediates included — are already raw words.
struct XArg {
  enum class Mode : uint8_t { Reg, Const, Mem, None } M = Mode::None;
  uint8_t R = 0;
  uint64_t K = 0;
  XMem Mem;
};

/// One decoded instruction. Hot fused handlers read only the leading
/// fields; the XArg tail serves the cold generic handlers.
struct XInsn {
  XOp Op = XOp::Halt;
  s1::Opcode OrigOp = s1::Opcode::HALT; ///< for the PerOpcode histogram
  s1::Cond C = s1::Cond::EQ;
  uint8_t Sub = 0;   ///< ALU/float sub-opcode (the original Opcode)
  uint8_t A = 0;     ///< fused register field (dst)
  uint8_t B = 0;     ///< fused register field (src)
  int32_t Target = -1; ///< decoded branch target / callee / catch handler
  uint64_t K = 0;      ///< fused constant word
  int64_t S1 = 0;      ///< syscall selector; alloc tag
  int64_t S2 = 0;      ///< syscall B-immediate; alloc size; tail-call argc
  int64_t S3 = 0;      ///< syscall X-immediate (e.g. ListN count)
  XMem MA, MB;         ///< fused memory refs (dst, src)
  XArg GA, GB, GX;     ///< generic operands for cold handlers
};

/// One function in decoded form.
struct DecodedFunction {
  std::vector<XInsn> Code;
  /// Original instruction index -> decoded index of the first real
  /// instruction at or after it (Code.size() when none). Used to resolve
  /// label positions and host-visible pcs.
  std::vector<int32_t> PcMap;
  /// Decoded index -> original instruction index, for trap messages that
  /// report pcs in assembly-listing units.
  std::vector<int32_t> OrigPc;
  /// Basic-block leader flags, one per decoded instruction plus one for
  /// the fall-off trailer slot. Leaders[I] is set when decoded index I
  /// starts a basic block: function entry, branch or catch-handler
  /// target, or the fall-through successor of any control transfer
  /// (branch, call, tail call, return, syscall) or allocation. Every pc a
  /// host can enter from outside straight-line code — run() start pcs,
  /// return words, syscall continuations, catch handlers — is a leader by
  /// construction, which is what lets the block-compiling native tier
  /// batch safepoints inside a block. Computed once at decode time so the
  /// compiler and any block-scoped analysis agree on boundaries.
  std::vector<uint8_t> Leaders;
};

/// A whole program in decoded form. Immutable; share freely.
struct DecodedProgram {
  std::vector<DecodedFunction> Functions;
};

/// Lowers \p P. Never fails: finalize() has already validated labels and
/// operand patterns, and unknown shapes fall back to generic handlers.
std::shared_ptr<const DecodedProgram> predecode(const s1::Program &P);

} // namespace vm
} // namespace s1lisp

#endif // S1LISP_VM_PREDECODE_H
