//===- vm/Predecode.cpp ---------------------------------------------------===//

#include "vm/Predecode.h"

#include <cstring>

using namespace s1lisp;
using namespace s1lisp::vm;
using namespace s1lisp::s1;

namespace {

uint64_t rawImmWord(const Operand &O) {
  if (O.M == Operand::Mode::FImm) {
    uint64_t W;
    std::memcpy(&W, &O.F, sizeof(W));
    return W;
  }
  return static_cast<uint64_t>(O.Imm);
}

XMem memRef(const Operand &O) {
  XMem M;
  M.Base = O.R;
  M.Index = O.Index;
  M.Scale = O.Scale;
  M.Disp = O.Imm;
  return M;
}

XArg genArg(const Operand &O) {
  XArg A;
  switch (O.M) {
  case Operand::Mode::Reg:
    A.M = XArg::Mode::Reg;
    A.R = O.R;
    break;
  case Operand::Mode::Imm:
  case Operand::Mode::FImm:
    A.M = XArg::Mode::Const;
    A.K = rawImmWord(O);
    break;
  case Operand::Mode::Mem:
    A.M = XArg::Mode::Mem;
    A.Mem = memRef(O);
    break;
  default:
    A.M = XArg::Mode::None;
    break;
  }
  return A;
}

/// Operand shape class for fused-variant selection.
enum class Shape { Reg, Const, MemS, MemX, Other };

Shape shapeOf(const Operand &O) {
  switch (O.M) {
  case Operand::Mode::Reg:
    return Shape::Reg;
  case Operand::Mode::Imm:
  case Operand::Mode::FImm:
    return Shape::Const;
  case Operand::Mode::Mem:
    return O.Index == 0xFF ? Shape::MemS : Shape::MemX;
  default:
    return Shape::Other;
  }
}

/// Fills the fused source fields (B register / K constant / MB memory)
/// from \p Src and returns the variant offset 0..3 (R, K, M, X).
int fuseSrc(XInsn &D, const Operand &Src) {
  switch (shapeOf(Src)) {
  case Shape::Reg:
    D.B = Src.R;
    return 0;
  case Shape::Const:
    D.K = rawImmWord(Src);
    return 1;
  case Shape::MemS:
    D.MB = memRef(Src);
    return 2;
  default:
    D.MB = memRef(Src);
    return 3;
  }
}

XOp offsetOp(XOp Base, int Offset) {
  return static_cast<XOp>(static_cast<int>(Base) + Offset);
}

XInsn decodeOne(const AsmFunction &F, const Instruction &I,
                const std::vector<int32_t> &PcMap) {
  XInsn D;
  D.OrigOp = I.Op;
  D.C = I.C;

  auto ResolveLabel = [&](int Label) {
    return PcMap[static_cast<size_t>(F.LabelPos[Label])];
  };

  switch (I.Op) {
  case Opcode::MOV: {
    int Src = fuseSrc(D, I.B);
    switch (shapeOf(I.A)) {
    case Shape::Reg:
      D.Op = offsetOp(XOp::MovRR, Src);
      D.A = I.A.R;
      break;
    case Shape::MemS:
      D.Op = offsetOp(XOp::MovMR, Src);
      D.MA = memRef(I.A);
      break;
    default:
      D.Op = offsetOp(XOp::MovXR, Src);
      D.MA = memRef(I.A);
      break;
    }
    return D;
  }

  case Opcode::PUSH:
    // fuseSrc fills B / K / MB; the Push handlers read those fields.
    D.Op = offsetOp(XOp::PushR, fuseSrc(D, I.A));
    return D;

  case Opcode::POP:
    if (shapeOf(I.A) == Shape::Reg) {
      D.Op = XOp::PopR;
      D.A = I.A.R;
    } else {
      D.Op = XOp::PopM;
      D.GA = genArg(I.A);
    }
    return D;

  case Opcode::ADD:
  case Opcode::SUB:
  case Opcode::MULT:
  case Opcode::DIV: {
    D.Sub = static_cast<uint8_t>(I.Op);
    bool TwoOp = I.X.M == Operand::Mode::None;
    if (TwoOp && shapeOf(I.A) == Shape::Reg &&
        (I.Op == Opcode::ADD || I.Op == Opcode::SUB)) {
      Shape S = shapeOf(I.B);
      if (S == Shape::Reg) {
        D.Op = I.Op == Opcode::ADD ? XOp::AddRR : XOp::SubRR;
        D.A = I.A.R;
        D.B = I.B.R;
        return D;
      }
      if (S == Shape::Const) {
        D.Op = I.Op == Opcode::ADD ? XOp::AddRK : XOp::SubRK;
        D.A = I.A.R;
        D.K = rawImmWord(I.B);
        return D;
      }
    }
    D.Op = TwoOp ? XOp::Alu2G : XOp::Alu3G;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    D.GX = genArg(I.X);
    return D;
  }

  case Opcode::FADD:
  case Opcode::FSUB:
  case Opcode::FMULT:
  case Opcode::FDIV:
  case Opcode::FMAX:
  case Opcode::FMIN:
    D.Sub = static_cast<uint8_t>(I.Op);
    D.Op = I.X.M == Operand::Mode::None ? XOp::FAlu2 : XOp::FAlu3;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    D.GX = genArg(I.X);
    return D;

  case Opcode::FNEG:
  case Opcode::FABS:
  case Opcode::FSQRT:
  case Opcode::FSIN:
  case Opcode::FCOS:
  case Opcode::FEXP:
  case Opcode::FLOG:
    D.Sub = static_cast<uint8_t>(I.Op);
    D.Op = XOp::FUnary;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    return D;

  case Opcode::FATAN:
    D.Op = XOp::FAtan;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    D.GX = genArg(I.X);
    return D;

  case Opcode::ITOF:
  case Opcode::FTOI:
    D.Op = I.Op == Opcode::ITOF ? XOp::Itof : XOp::Ftoi;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    return D;

  case Opcode::MOVTAG:
    D.Op = XOp::MovTag;
    D.S1 = I.X.Imm; // the tag
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    return D;

  case Opcode::GETTAG:
    D.Op = XOp::GetTag;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    return D;

  case Opcode::LEA:
    D.Op = XOp::Lea;
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    return D;

  case Opcode::JMPA:
    D.Op = XOp::Jmp;
    D.Target = ResolveLabel(I.A.Label);
    return D;

  case Opcode::JMPZ: {
    D.Target = ResolveLabel(I.X.Label);
    Shape SA = shapeOf(I.A), SB = shapeOf(I.B);
    if (SA == Shape::Reg && SB == Shape::Reg) {
      D.Op = XOp::JmpzRR;
      D.A = I.A.R;
      D.B = I.B.R;
    } else if (SA == Shape::Reg && SB == Shape::Const) {
      D.Op = XOp::JmpzRK;
      D.A = I.A.R;
      D.K = rawImmWord(I.B);
    } else {
      D.Op = XOp::JmpzG;
      D.GA = genArg(I.A);
      D.GB = genArg(I.B);
    }
    return D;
  }

  case Opcode::FJMPZ:
    D.Op = XOp::FJmpzG;
    D.Target = ResolveLabel(I.X.Label);
    D.GA = genArg(I.A);
    D.GB = genArg(I.B);
    return D;

  case Opcode::CALL:
    D.Op = XOp::Call;
    D.Target = static_cast<int32_t>(I.A.Imm);
    return D;

  case Opcode::CALLPTR:
    D.Op = XOp::CallPtr;
    D.GA = genArg(I.A);
    return D;

  case Opcode::TAILCALL:
    D.Op = XOp::TailCall;
    D.S2 = I.A.Imm; // argc
    D.Target = static_cast<int32_t>(I.B.Imm);
    return D;

  case Opcode::TAILCALLPTR:
    D.Op = XOp::TailCallPtr;
    D.S2 = I.B.Imm; // argc
    D.GA = genArg(I.A);
    return D;

  case Opcode::RET:
    D.Op = XOp::Ret;
    return D;

  case Opcode::ALLOC:
    D.Op = XOp::Alloc;
    D.S1 = I.B.Imm; // tag
    D.S2 = I.X.Imm; // words
    D.GA = genArg(I.A);
    return D;

  case Opcode::SYSCALL:
    D.Op = XOp::Syscall;
    D.S1 = I.A.Imm; // syscall selector
    D.S2 = I.B.Imm; // sub-operation code
    D.S3 = I.X.Imm; // extra immediate (ListN count, ...)
    // PushCatch's handler label resolves to a decoded index here.
    if (static_cast<Syscall>(I.A.Imm) == Syscall::PushCatch)
      D.Target = ResolveLabel(static_cast<int>(I.B.Imm));
    return D;

  case Opcode::HALT:
  case Opcode::LABEL: // stripped before decodeOne; defensive
    D.Op = XOp::Halt;
    return D;
  }
  D.Op = XOp::Halt;
  return D;
}

} // namespace

std::shared_ptr<const DecodedProgram> vm::predecode(const s1::Program &P) {
  auto DP = std::make_shared<DecodedProgram>();
  DP->Functions.reserve(P.Functions.size());
  for (const AsmFunction &F : P.Functions) {
    DecodedFunction DF;
    // Pass 1: map original pcs to decoded indices (labels occupy no slot).
    DF.PcMap.assign(F.Code.size() + 1, 0);
    int32_t Next = 0;
    for (size_t Pc = 0; Pc < F.Code.size(); ++Pc) {
      DF.PcMap[Pc] = Next;
      if (F.Code[Pc].Op != Opcode::LABEL)
        ++Next;
    }
    DF.PcMap[F.Code.size()] = Next;
    // Pass 2: lower every real instruction.
    DF.Code.reserve(static_cast<size_t>(Next));
    DF.OrigPc.reserve(static_cast<size_t>(Next));
    for (size_t Pc = 0; Pc < F.Code.size(); ++Pc)
      if (F.Code[Pc].Op != Opcode::LABEL) {
        DF.Code.push_back(decodeOne(F, F.Code[Pc], DF.PcMap));
        DF.OrigPc.push_back(static_cast<int32_t>(Pc));
      }
    // Pass 3: basic-block leaders. Branch/catch targets are already
    // decoded indices, so this is a single linear sweep. Alloc ends a
    // block because it can raise GcPending/Halted, which the threaded
    // engine observes at the next instruction boundary — making the
    // successor a leader keeps those checks at block entries only.
    DF.Leaders.assign(DF.Code.size() + 1, 0);
    DF.Leaders[0] = 1;
    for (size_t I = 0; I < DF.Code.size(); ++I) {
      const XInsn &D = DF.Code[I];
      switch (D.Op) {
      case XOp::Jmp:
      case XOp::JmpzRR:
      case XOp::JmpzRK:
      case XOp::JmpzG:
      case XOp::FJmpzG:
        if (D.Target >= 0)
          DF.Leaders[static_cast<size_t>(D.Target)] = 1;
        DF.Leaders[I + 1] = 1;
        break;
      case XOp::Syscall:
        // PushCatch resolves its handler label into Target.
        if (D.Target >= 0)
          DF.Leaders[static_cast<size_t>(D.Target)] = 1;
        DF.Leaders[I + 1] = 1;
        break;
      case XOp::Call:
      case XOp::CallPtr:
      case XOp::TailCall:
      case XOp::TailCallPtr:
      case XOp::Ret:
      case XOp::Halt:
      case XOp::Alloc:
        DF.Leaders[I + 1] = 1;
        break;
      default:
        break;
      }
    }
    DP->Functions.push_back(std::move(DF));
  }
  return DP;
}
