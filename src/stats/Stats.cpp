//===- stats/Stats.cpp ----------------------------------------------------===//

#include "stats/Stats.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>

using namespace s1lisp;
using namespace s1lisp::stats;

//===----------------------------------------------------------------------===//
// Counter registry
//===----------------------------------------------------------------------===//

namespace {

// Thread-local so that fuzzing worker threads (which leave collection at
// its default: off) never race the owning thread's counters. A worker that
// does want to count installs a TallyScope, which routes its updates into
// a private LocalTally instead of the shared values.
thread_local bool StatsEnabled = false;
thread_local LocalTally *ActiveTally = nullptr;

// Guards registry membership: function-local static Statistics can be
// first-constructed on a worker thread while another thread reports.
std::mutex RegistryMu;

std::vector<Statistic *> &registry() {
  static std::vector<Statistic *> R;
  return R;
}

// Dense-slot allocator for Statistic::Idx (under RegistryMu). Slots are
// recycled when a counter dies (tests create short-lived ones), keeping
// tally cell vectors as small as the live counter population.
std::vector<unsigned> &freeSlots() {
  static std::vector<unsigned> F;
  return F;
}
unsigned NextSlot = 0;

std::string formatUnsigned(uint64_t V) { return std::to_string(V); }

void appendJsonNumber(std::string &Out, double V) {
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
}

} // namespace

bool stats::enabled() { return StatsEnabled; }
void stats::setEnabled(bool On) { StatsEnabled = On; }

Statistic::Statistic(const char *Name, const char *Desc)
    : Name(Name), Desc(Desc) {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  if (freeSlots().empty()) {
    Idx = NextSlot++;
  } else {
    Idx = freeSlots().back();
    freeSlots().pop_back();
  }
  registry().push_back(this);
}

Statistic::~Statistic() {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  auto &R = registry();
  R.erase(std::remove(R.begin(), R.end(), this), R.end());
  freeSlots().push_back(Idx);
}

LocalTally::Cell &LocalTally::cell(Statistic *S) {
  if (S->Idx >= Cells.size())
    Cells.resize(std::max<size_t>(S->Idx + 1, Cells.size() * 2));
  Cell &C = Cells[S->Idx];
  C.S = S;
  return C;
}

void Statistic::record(uint64_t N) {
  if (ActiveTally)
    ActiveTally->cell(this).Add += N;
  else
    Value += N;
}

void Statistic::recordMax(uint64_t N) {
  if (ActiveTally) {
    LocalTally::Cell &C = ActiveTally->cell(this);
    if (N > C.Max)
      C.Max = N;
  } else if (N > Value) {
    Value = N;
  }
}

void LocalTally::apply() {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  for (Cell &C : Cells) {
    if (!C.S)
      continue;
    C.S->Value += C.Add;
    if (C.Max > C.S->Value)
      C.S->Value = C.Max;
  }
  Cells.clear();
}

std::vector<TallyDelta> LocalTally::deltas() const {
  std::vector<TallyDelta> Out;
  for (const Cell &C : Cells)
    if (C.S)
      Out.push_back({C.S->name(), C.Add, C.Max});
  std::sort(Out.begin(), Out.end(),
            [](const TallyDelta &A, const TallyDelta &B) { return A.Name < B.Name; });
  return Out;
}

void stats::applyTallyDeltas(const std::vector<TallyDelta> &Deltas) {
  if (!StatsEnabled)
    return;
  // Resolve names outside any Statistic update: registry() order is
  // stable for the duration (counters have static storage).
  std::vector<Statistic *> Targets(Deltas.size(), nullptr);
  {
    std::lock_guard<std::mutex> Lock(RegistryMu);
    for (size_t I = 0; I < Deltas.size(); ++I)
      for (Statistic *S : registry())
        if (Deltas[I].Name == S->name()) {
          Targets[I] = S;
          break;
        }
  }
  for (size_t I = 0; I < Deltas.size(); ++I) {
    if (!Targets[I])
      continue;
    if (Deltas[I].Add)
      *Targets[I] += Deltas[I].Add;
    if (Deltas[I].Max)
      Targets[I]->updateMax(Deltas[I].Max);
  }
}

std::string stats::tallyDeltasJson(const std::vector<TallyDelta> &Deltas) {
  std::string Out = "{";
  bool First = true;
  for (const TallyDelta &D : Deltas) {
    // max(Add, Max) is what a process that recorded only this tally would
    // report as the counter's value (high-water counters carry Max).
    uint64_t V = std::max(D.Add, D.Max);
    if (!V)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"" + D.Name + "\": " + formatUnsigned(V);
  }
  Out += First ? "}" : "\n}";
  return Out;
}

TallyScope::TallyScope(LocalTally &T)
    : Prev(ActiveTally), PrevEnabled(StatsEnabled) {
  ActiveTally = &T;
  StatsEnabled = true;
}

TallyScope::~TallyScope() {
  ActiveTally = Prev;
  StatsEnabled = PrevEnabled;
}

std::vector<StatValue> stats::allStats(bool IncludeZeros) {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  std::vector<StatValue> Out;
  for (const Statistic *S : registry())
    if (IncludeZeros || S->value() != 0)
      Out.push_back({S->name(), S->desc(), S->value()});
  std::sort(Out.begin(), Out.end(),
            [](const StatValue &A, const StatValue &B) { return A.Name < B.Name; });
  return Out;
}

uint64_t stats::statValue(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  uint64_t Total = 0;
  for (const Statistic *S : registry())
    if (Name == S->name())
      Total += S->value();
  return Total;
}

void stats::resetStats() {
  std::lock_guard<std::mutex> Lock(RegistryMu);
  for (Statistic *S : registry())
    S->reset();
}

std::string stats::reportStats() {
  std::vector<StatValue> Values = allStats();
  size_t ValueWidth = 0, NameWidth = 0;
  for (const StatValue &V : Values) {
    ValueWidth = std::max(ValueWidth, formatUnsigned(V.Value).size());
    NameWidth = std::max(NameWidth, V.Name.size());
  }
  std::string Out;
  Out += "===-------------------------------------------------------------===\n";
  Out += "                        ... Statistics ...\n";
  Out += "===-------------------------------------------------------------===\n";
  for (const StatValue &V : Values) {
    std::string Num = formatUnsigned(V.Value);
    Out += std::string(ValueWidth - Num.size(), ' ') + Num + " " + V.Name +
           std::string(NameWidth - V.Name.size(), ' ') + " - " + V.Desc + "\n";
  }
  return Out;
}

StatsSnapshot stats::snapshotStats() { return allStats(/*IncludeZeros=*/true); }

std::string stats::reportStatsDeltaJson(const StatsSnapshot &Base) {
  std::map<std::string, uint64_t> Before;
  for (const StatValue &V : Base)
    Before[V.Name] += V.Value;
  std::string Out = "{";
  bool First = true;
  for (const StatValue &V : allStats(/*IncludeZeros=*/true)) {
    auto It = Before.find(V.Name);
    uint64_t Old = It == Before.end() ? 0 : It->second;
    if (V.Value <= Old)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"" + V.Name + "\": " + formatUnsigned(V.Value - Old);
  }
  Out += First ? "}" : "\n}";
  return Out;
}

std::string stats::reportStatsJson(bool IncludeZeros) {
  std::string Out = "{";
  bool First = true;
  for (const StatValue &V : allStats(IncludeZeros)) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  \"" + V.Name + "\": " + formatUnsigned(V.Value);
  }
  Out += First ? "}" : "\n}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Phase timing
//===----------------------------------------------------------------------===//

namespace {

thread_local bool TimingEnabled = false;

using WallClock = std::chrono::steady_clock;

struct TimerFrame {
  const char *Phase;
  WallClock::time_point WallStart;
  std::clock_t CpuStart;
  double ChildWall = 0; ///< wall seconds consumed by nested phases
};

struct TimingState {
  std::vector<TimerFrame> Stack;
  /// Aggregation by phase name, in first-seen order.
  std::map<std::string, PhaseTime> Records;
};

TimingState &timingState() {
  static thread_local TimingState S;
  return S;
}

} // namespace

bool stats::timingEnabled() { return TimingEnabled; }
void stats::setTimingEnabled(bool On) { TimingEnabled = On; }

ThreadBaselineScope::ThreadBaselineScope()
    : PrevTally(ActiveTally), PrevEnabled(StatsEnabled),
      PrevTiming(TimingEnabled) {
  ActiveTally = nullptr;
  StatsEnabled = false;
  TimingEnabled = false;
}

ThreadBaselineScope::~ThreadBaselineScope() {
  ActiveTally = PrevTally;
  StatsEnabled = PrevEnabled;
  TimingEnabled = PrevTiming;
}

PhaseTimer::PhaseTimer(const char *Phase) : Active(TimingEnabled) {
  if (!Active)
    return;
  timingState().Stack.push_back({Phase, WallClock::now(), std::clock(), 0});
}

PhaseTimer::~PhaseTimer() {
  if (!Active)
    return;
  TimingState &S = timingState();
  assert(!S.Stack.empty() && "timer stack underflow");
  TimerFrame F = S.Stack.back();
  S.Stack.pop_back();
  double Wall =
      std::chrono::duration<double>(WallClock::now() - F.WallStart).count();
  double Cpu =
      static_cast<double>(std::clock() - F.CpuStart) / CLOCKS_PER_SEC;
  PhaseTime &R = S.Records[F.Phase];
  R.Name = F.Phase;
  ++R.Invocations;
  R.WallSeconds += Wall;
  R.SelfWallSeconds += Wall - F.ChildWall;
  R.CpuSeconds += Cpu;
  if (!S.Stack.empty())
    S.Stack.back().ChildWall += Wall;
}

std::vector<PhaseTime> stats::phaseTimes() {
  std::vector<PhaseTime> Out;
  for (const auto &[Name, R] : timingState().Records)
    Out.push_back(R);
  std::sort(Out.begin(), Out.end(), [](const PhaseTime &A, const PhaseTime &B) {
    return A.WallSeconds > B.WallSeconds;
  });
  return Out;
}

void stats::resetPhaseTimes() { timingState().Records.clear(); }

std::string stats::reportPhaseTimes() {
  std::vector<PhaseTime> Times = phaseTimes();
  double TotalWall = 0;
  for (const PhaseTime &T : Times)
    TotalWall += T.SelfWallSeconds;
  std::string Out;
  Out += "===-------------------------------------------------------------===\n";
  Out += "                 ... Phase execution timing report ...\n";
  Out += "===-------------------------------------------------------------===\n";
  char Buf[160];
  snprintf(Buf, sizeof(Buf), "  Total wall time: %.6f seconds\n\n", TotalWall);
  Out += Buf;
  Out += "   ---Wall Time---   ---Self Time---   --CPU Time--  -Runs-  Phase\n";
  for (const PhaseTime &T : Times) {
    double Pct = TotalWall > 0 ? 100.0 * T.SelfWallSeconds / TotalWall : 0;
    snprintf(Buf, sizeof(Buf), "   %10.6f      %10.6f (%5.1f%%) %10.6f  %6llu  %s\n",
             T.WallSeconds, T.SelfWallSeconds, Pct, T.CpuSeconds,
             static_cast<unsigned long long>(T.Invocations), T.Name.c_str());
    Out += Buf;
  }
  return Out;
}

std::string stats::reportPhaseTimesJson() {
  std::string Out = "[";
  bool First = true;
  for (const PhaseTime &T : phaseTimes()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"phase\": \"" + T.Name +
           "\", \"invocations\": " + std::to_string(T.Invocations) +
           ", \"wall\": ";
    appendJsonNumber(Out, T.WallSeconds);
    Out += ", \"self\": ";
    appendJsonNumber(Out, T.SelfWallSeconds);
    Out += ", \"cpu\": ";
    appendJsonNumber(Out, T.CpuSeconds);
    Out += "}";
  }
  Out += First ? "]" : "\n]";
  return Out;
}
