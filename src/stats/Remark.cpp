//===- stats/Remark.cpp ---------------------------------------------------===//

#include "stats/Remark.h"

#include <cctype>
#include <cstdio>

using namespace s1lisp;
using namespace s1lisp::stats;

std::string RemarkStream::str() const {
  std::string Out;
  for (const Remark &R : Remarks) {
    if (!R.Detail.empty()) {
      Out += ";**** " + R.Detail + "\n";
    } else {
      Out += ";**** Optimizing this form: " + R.Before + "\n";
      Out += ";**** to be this form: " + R.After + "\n";
    }
    Out += ";**** courtesy of " + R.Rule + "\n";
  }
  return Out;
}

unsigned RemarkStream::count(const std::string &Rule) const {
  unsigned N = 0;
  for (const Remark &R : Remarks)
    if (R.Rule == Rule)
      ++N;
  return N;
}

std::string stats::jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
  return Out;
}

std::string RemarkStream::json() const {
  std::string Out = "[";
  bool First = true;
  for (const Remark &R : Remarks) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"phase\": " + jsonQuote(R.Phase) +
           ", \"rule\": " + jsonQuote(R.Rule) +
           ", \"function\": " + jsonQuote(R.Function) +
           ", \"before\": " + jsonQuote(R.Before) +
           ", \"after\": " + jsonQuote(R.After) +
           ", \"detail\": " + jsonQuote(R.Detail) + "}";
  }
  Out += First ? "]" : "\n]";
  return Out;
}

//===----------------------------------------------------------------------===//
// Minimal parser for the subset of JSON the emitters above produce.
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &S;
  size_t P = 0;

  void skipWs() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool eat(char C) {
    skipWs();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return false;
  }
  bool parseString(std::string &Out) {
    skipWs();
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    Out.clear();
    while (P < S.size() && S[P] != '"') {
      char C = S[P++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (P >= S.size())
        return false;
      char E = S[P++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (P + 4 > S.size())
          return false;
        unsigned V = 0;
        for (int J = 0; J < 4; ++J) {
          char H = S[P++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V += H - '0';
          else if (H >= 'a' && H <= 'f')
            V += H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            V += H - 'A' + 10;
          else
            return false;
        }
        // The emitter only escapes control characters this way.
        if (V > 0x7f)
          return false;
        Out += static_cast<char>(V);
        break;
      }
      default:
        return false;
      }
    }
    if (P >= S.size())
      return false;
    ++P; // closing quote
    return true;
  }
};

} // namespace

bool stats::parseRemarksJson(const std::string &Json, std::vector<Remark> &Out) {
  Out.clear();
  Parser P{Json};
  if (!P.eat('['))
    return false;
  P.skipWs();
  if (P.eat(']')) {
    P.skipWs();
    return P.P == Json.size();
  }
  while (true) {
    if (!P.eat('{'))
      return false;
    Remark R;
    while (true) {
      std::string Key, Val;
      if (!P.parseString(Key) || !P.eat(':') || !P.parseString(Val))
        return false;
      if (Key == "phase")
        R.Phase = Val;
      else if (Key == "rule")
        R.Rule = Val;
      else if (Key == "function")
        R.Function = Val;
      else if (Key == "before")
        R.Before = Val;
      else if (Key == "after")
        R.After = Val;
      else if (Key == "detail")
        R.Detail = Val;
      else
        return false;
      if (P.eat('}'))
        break;
      if (!P.eat(','))
        return false;
    }
    Out.push_back(std::move(R));
    if (P.eat(']'))
      break;
    if (!P.eat(','))
      return false;
  }
  P.skipWs();
  return P.P == Json.size();
}
