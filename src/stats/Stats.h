//===- stats/Stats.h - Compiler observability substrate ---------*- C++ -*-===//
///
/// \file
/// LLVM-style self-registering named counters and nested phase timing.
/// Every phase of the Table 1 pipeline (and the simulator) reports what it
/// did through this registry, so the driver can render one coherent
/// statistics report — the measurement substrate behind every number in
/// EXPERIMENTS.md.
///
/// Counters are declared at namespace or function-local static scope:
///
///   S1_STAT(CseHoisted, "opt.cse.hoisted", "subexpressions abstracted");
///   ...
///   ++CseHoisted;
///
/// Counting is gated by a global enable flag (off by default) so the hot
/// paths pay one predictable branch when observability is not requested.
/// `Statistic` objects must outlive any registry report; give them static
/// storage duration (they deregister on destruction, so the short-lived
/// instances tests create are safe too).
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_STATS_STATS_H
#define S1LISP_STATS_STATS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace s1lisp {
namespace stats {

/// Master switch for counter collection. Off by default, and per-thread:
/// a worker thread that never calls setEnabled(true) cannot race the
/// reporting thread's counters, which is what lets the parallel fuzzing
/// oracle compile on many threads against one registry.
bool enabled();
void setEnabled(bool On);

class LocalTally;

/// One named counter. Registers itself with the global registry on
/// construction and deregisters on destruction.
class Statistic {
public:
  Statistic(const char *Name, const char *Desc);
  ~Statistic();
  Statistic(const Statistic &) = delete;
  Statistic &operator=(const Statistic &) = delete;

  const char *name() const { return Name; }
  const char *desc() const { return Desc; }
  uint64_t value() const { return Value; }

  Statistic &operator++() {
    if (enabled())
      record(1);
    return *this;
  }
  Statistic &operator+=(uint64_t N) {
    if (enabled())
      record(N);
    return *this;
  }
  /// Monotonic maximum (for high-water marks).
  void updateMax(uint64_t N) {
    if (enabled())
      recordMax(N);
  }
  void reset() { Value = 0; }

private:
  friend class LocalTally;
  /// Routes to the thread's active LocalTally when one is installed,
  /// otherwise to the shared value (single-threaded collection).
  void record(uint64_t N);
  void recordMax(uint64_t N);

  const char *Name;
  const char *Desc;
  uint64_t Value = 0;
  /// Dense registry slot, assigned at registration (recycled on
  /// destruction). Tally cells index by it, so a worker-side counter
  /// update is one bounds check and an add — no hashing, no locks.
  unsigned Idx = 0;
};

/// One counter's contribution captured in a LocalTally, keyed by name so
/// it can outlive the capturing compilation (the compile-service cache
/// stores these and replays them on a hit, making cached counter totals
/// identical to a fresh compile's).
struct TallyDelta {
  std::string Name;
  uint64_t Add = 0;
  uint64_t Max = 0;

  bool operator==(const TallyDelta &O) const = default;
};

/// A private accumulation of counter updates made on one worker thread.
/// While a TallyScope is active, every Statistic update on that thread
/// lands here instead of the shared values; the spawning thread folds the
/// tallies in with apply() after the join. Sums commute, so totals are
/// identical to a serial run for any job count or completion order.
///
/// Accumulation is fully lock-free: cells live in a flat vector indexed
/// by each counter's dense registry slot, so the worker-side cost of one
/// update is an indexed add. Only the single fold at phase end (apply)
/// takes the registry lock.
class LocalTally {
public:
  /// Folds the tally into the shared counters; call after workers have
  /// joined. Clears the tally. Takes the registry lock, so concurrent
  /// request workers (the compile-service daemon) may fold independently.
  void apply();

  /// The captured updates by counter name, sorted. Does not clear.
  std::vector<TallyDelta> deltas() const;

private:
  friend class Statistic;
  struct Cell {
    Statistic *S = nullptr; ///< null while the slot is untouched
    uint64_t Add = 0;
    uint64_t Max = 0;
  };
  Cell &cell(Statistic *S);
  std::vector<Cell> Cells; ///< indexed by Statistic::Idx
};

/// Re-applies name-keyed deltas through the normal recording path: they
/// land in the current thread's active tally when one is installed, and
/// are dropped entirely when collection is disabled — exactly what a
/// fresh recompile of the captured work would have done. Names with no
/// live counter are ignored.
void applyTallyDeltas(const std::vector<TallyDelta> &Deltas);

/// Renders deltas as one JSON object ({"name": add, ...}); zero adds are
/// omitted, matching reportStatsDeltaJson's shape.
std::string tallyDeltasJson(const std::vector<TallyDelta> &Deltas);

/// RAII: enables stats collection on the current thread and routes it into
/// \p T until destruction (restores the previous route and enable state).
class TallyScope {
public:
  explicit TallyScope(LocalTally &T);
  ~TallyScope();
  TallyScope(const TallyScope &) = delete;
  TallyScope &operator=(const TallyScope &) = delete;

private:
  LocalTally *Prev;
  bool PrevEnabled;
};

/// RAII: resets the current thread's observability state (stats enable,
/// active tally route, phase-timing enable) to the defaults a freshly
/// spawned thread would have, restoring the previous state on
/// destruction. The worker pool wraps every parallel task in one, so a
/// task behaves identically whether it runs on a pool thread or on the
/// caller participating in its own fan-out: spawned tasks never
/// contribute to the spawning thread's counters or phase times.
class ThreadBaselineScope {
public:
  ThreadBaselineScope();
  ~ThreadBaselineScope();
  ThreadBaselineScope(const ThreadBaselineScope &) = delete;
  ThreadBaselineScope &operator=(const ThreadBaselineScope &) = delete;

private:
  LocalTally *PrevTally;
  bool PrevEnabled;
  bool PrevTiming;
};

#define S1_STAT(VAR, NAME, DESC)                                               \
  static ::s1lisp::stats::Statistic VAR(NAME, DESC)

/// A point-in-time view of one counter.
struct StatValue {
  std::string Name;
  std::string Desc;
  uint64_t Value = 0;
};

/// All live counters, sorted by name. Zero-valued counters are included
/// only when \p IncludeZeros is set.
std::vector<StatValue> allStats(bool IncludeZeros = false);

/// The counter's current value, or 0 when no such counter is live.
uint64_t statValue(const std::string &Name);

/// Zeroes every live counter.
void resetStats();

/// A point-in-time capture of every live counter (zeros included), for
/// per-configuration deltas: capture, run one configuration, then render
/// what that run alone contributed with reportStatsDeltaJson().
using StatsSnapshot = std::vector<StatValue>;
StatsSnapshot snapshotStats();

/// Counter increments since \p Base as one JSON object. Counters absent
/// from \p Base count from zero; zero deltas are omitted.
std::string reportStatsDeltaJson(const StatsSnapshot &Base);

/// The LLVM `-stats`-style text report.
std::string reportStats();

/// The counters as one JSON object: {"opt.cse.hoisted": 3, ...}.
std::string reportStatsJson(bool IncludeZeros = false);

//===----------------------------------------------------------------------===//
// Phase timing
//===----------------------------------------------------------------------===//

/// Master switch for phase timing. Off by default.
bool timingEnabled();
void setTimingEnabled(bool On);

/// RAII wall/CPU timer for one dynamic phase execution. Scopes nest: time
/// spent in an inner PhaseTimer is attributed to both the inner phase's
/// total and subtracted from the enclosing phase's self time.
class PhaseTimer {
public:
  explicit PhaseTimer(const char *Phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

private:
  bool Active;
};

/// Accumulated timing for one phase name.
struct PhaseTime {
  std::string Name;
  uint64_t Invocations = 0;
  double WallSeconds = 0;     ///< total (inclusive of nested phases)
  double SelfWallSeconds = 0; ///< exclusive of nested phases
  double CpuSeconds = 0;
};

/// Accumulated records, sorted by descending wall time.
std::vector<PhaseTime> phaseTimes();

/// Forgets all timing records.
void resetPhaseTimes();

/// The `-time-passes`-style table.
std::string reportPhaseTimes();

/// Timing as a JSON array of {"phase","invocations","wall","self","cpu"}.
std::string reportPhaseTimesJson();

} // namespace stats
} // namespace s1lisp

#endif // S1LISP_STATS_STATS_H
