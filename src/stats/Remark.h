//===- stats/Remark.h - Structured optimization remarks ---------*- C++ -*-===//
///
/// \file
/// Structured optimization remarks: every rewrite a phase performs is
/// recorded with its rule name, enclosing function, and before/after
/// renderings. The stream renders either as the paper's ";**** courtesy
/// of" transcript (byte-identical to the old opt::OptLog output, which
/// this class replaces) or as machine-readable JSON for `s1lispc
/// --remarks=<file.json>` and downstream tooling.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_STATS_REMARK_H
#define S1LISP_STATS_REMARK_H

#include <string>
#include <vector>

namespace s1lisp {
namespace stats {

/// One recorded rewrite.
struct Remark {
  std::string Phase;    ///< emitting phase, e.g. "opt.metaeval"
  std::string Rule;     ///< e.g. "META-SUBSTITUTE"
  std::string Function; ///< enclosing function name, when known
  std::string Before;   ///< source rendering before the rewrite
  std::string After;    ///< source rendering after the rewrite
  std::string Detail;   ///< e.g. "2 substitutions for the variable q"

  bool operator==(const Remark &O) const = default;
};

/// An append-only stream of remarks.
class RemarkStream {
public:
  std::vector<Remark> Remarks;

  void remark(Remark R) { Remarks.push_back(std::move(R)); }

  /// Renders the transcript in the paper's ";**** courtesy of" style.
  std::string str() const;

  /// Number of remarks carrying the named rule.
  unsigned count(const std::string &Rule) const;

  /// The remarks as a JSON array of objects.
  std::string json() const;
};

/// Escapes \p S for inclusion in a JSON string literal (quotes the result).
std::string jsonQuote(const std::string &S);

/// Parses a JSON array previously produced by RemarkStream::json().
/// Returns false (and leaves \p Out unspecified) on malformed input.
bool parseRemarksJson(const std::string &Json, std::vector<Remark> &Out);

} // namespace stats
} // namespace s1lisp

#endif // S1LISP_STATS_REMARK_H
