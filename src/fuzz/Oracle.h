//===- fuzz/Oracle.h - Differential ablation-matrix oracle ------*- C++ -*-===//
///
/// \file
/// Runs one generated program on its argument grid through the
/// interpreter (the semantic reference) and through the compiler at every
/// configuration of the ablation matrix (driver/Ablation.h), then compares
/// outcomes. Printed results must match exactly; error outcomes must agree
/// by class (the interpreter and the simulator word their messages
/// differently, but "wrong number of arguments" must never turn into a
/// wrong answer).
///
/// Two documented deviations are tolerated rather than reported:
///
///  * Fixnum width. Interpreted fixnums are 64-bit, compiled fixnums are
///    32-bit (the S-1's boxed immediates), so any grid point where either
///    engine overflows is skipped — constant folding can also legitimately
///    remove an overflow outright, so there is no portable expectation.
///  * Error elision by optimization. The optimizer may delete a pure but
///    doomed computation (an unused binding whose init would signal), so a
///    configuration with optimization enabled is allowed to succeed where
///    the reference errs. The reverse — an optimized program erring where
///    the reference succeeds — is always a reported divergence.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_FUZZ_ORACLE_H
#define S1LISP_FUZZ_ORACLE_H

#include "driver/Ablation.h"
#include "fuzz/Generator.h"
#include "vm/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace s1lisp {
namespace fuzz {

/// Coarse classification of a runtime error message, used to compare
/// error outcomes across engines whose message texts differ.
enum class ErrorClass {
  None,
  Overflow, ///< compiled 32-bit fixnum boxing trap
  WrongType,
  WrongArgCount,
  DivisionByZero,
  Undefined,
  NotAFunction,
  Unbound,
  Fuel,
  Other,
};

/// Maps an engine's error message onto an ErrorClass by keyword.
ErrorClass classifyError(const std::string &Message);

/// What one engine produced for one grid point.
struct Outcome {
  enum class Kind { Value, Error, CompileError };
  Kind K = Kind::Value;
  std::string Text; ///< printed value, or the error message
  ErrorClass EC = ErrorClass::None;

  static Outcome value(std::string Printed);
  static Outcome error(std::string Message);
  static Outcome compileError(std::string Message);
};

/// One reference/actual disagreement.
struct Divergence {
  std::string Config;   ///< ablation-matrix name, or "compile"
  size_t ArgIndex = 0;  ///< row of GeneratedProgram::ArgGrid
  Outcome Reference;    ///< what the interpreter did
  Outcome Actual;       ///< what this configuration did
  std::string StatsJson;///< per-config compile counter/remark delta
};

struct OracleOptions {
  /// Configurations to test; empty means the full ablationMatrix().
  std::vector<driver::AblationConfig> Configs;
  uint64_t InterpFuel = 2'000'000;
  uint64_t VmFuel = 20'000'000;
  /// Capture a src/stats counter delta per configuration compile, attached
  /// to any divergence against that configuration (and to repro files).
  bool CaptureStats = false;
  /// Worker threads fanning out over the ablation matrix (each
  /// configuration compiles and runs its grid independently); 1 = serial.
  /// Forced serial when CaptureStats is set, because per-configuration
  /// deltas are snapshots of the one shared counter registry.
  unsigned Jobs = 1;
  /// Simulator dispatch engine for the compiled side of the comparison.
  vm::Engine Engine = vm::Engine::Threaded;
  /// Forced-GC schedule: both sides collect their runtime heaps every N
  /// allocations (0 = never). Results must be identical across schedules;
  /// interpreter runs also re-verify the heap after every collection, so
  /// N=1 is the strongest automated moving-collector test.
  uint64_t GcEvery = 0;
};

struct CheckResult {
  enum class Status {
    Agree,        ///< all configurations matched the reference on all rows
    Diverged,     ///< at least one reported divergence
    ConvertError, ///< the program did not convert — generator bug
  };
  Status St = Status::Agree;
  std::string ConvertMessage;
  std::vector<Divergence> Divergences;
  unsigned ToleratedOverflows = 0; ///< grid points skipped for fixnum width
  unsigned ToleratedElisions = 0;  ///< optimizer legitimately removed an error
  unsigned RowsCompared = 0;       ///< (config, grid point) pairs checked
};

/// Runs the full differential check for one program.
CheckResult checkProgram(const GeneratedProgram &P,
                         const OracleOptions &O = {});

/// Runs one source/entry/grid triple against a single configuration,
/// returning only that configuration's divergences. The reducer uses this
/// to re-test shrunken candidates cheaply.
std::vector<Divergence> checkAgainstConfig(const std::string &Source,
                                           const std::string &Entry,
                                           const std::vector<std::vector<sexpr::Value>> &Grid,
                                           const driver::AblationConfig &Config,
                                           const OracleOptions &O = {});

} // namespace fuzz
} // namespace s1lisp

#endif // S1LISP_FUZZ_ORACLE_H
