//===- fuzz/Reducer.cpp ---------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "sexpr/Printer.h"
#include "sexpr/Reader.h"

#include <fstream>

using namespace s1lisp;
using namespace s1lisp::fuzz;
using sexpr::Value;

namespace {

/// Proper-list elements (a generated program has no dotted tails).
std::vector<Value> elems(Value V) {
  std::vector<Value> Out;
  for (Value P = V; P.isCons(); P = P.cdr())
    Out.push_back(P.car());
  return Out;
}

Value buildList(const std::vector<Value> &E, sexpr::Heap &H) {
  Value Out = Value::nil();
  for (size_t I = E.size(); I > 0; --I)
    Out = H.cons(E[I - 1], Out);
  return Out;
}

/// Compound forms (list nodes) under \p V, counting \p V itself.
unsigned countListNodes(Value V) {
  if (!V.isCons())
    return 0;
  unsigned N = 1;
  for (Value P = V; P.isCons(); P = P.cdr())
    N += countListNodes(P.car());
  return N;
}

Value getAt(Value Root, const std::vector<unsigned> &Path) {
  for (unsigned I : Path)
    Root = elems(Root)[I];
  return Root;
}

Value replaceAt(Value Root, const std::vector<unsigned> &Path, size_t Pos,
                Value Replacement, sexpr::Heap &H) {
  if (Pos == Path.size())
    return Replacement;
  std::vector<Value> E = elems(Root);
  E[Path[Pos]] = replaceAt(E[Path[Pos]], Path, Pos + 1, Replacement, H);
  return buildList(E, H);
}

bool isDefunNamed(Value Root, const std::string &Name) {
  if (!Root.isCons())
    return false;
  std::vector<Value> E = elems(Root);
  return E.size() >= 2 && E[0].isSymbol() && E[0].symbol()->name() == "defun" &&
         E[1].isSymbol() && E[1].symbol()->name() == Name;
}

/// Pre-order paths to every compound element under \p Node, recursing from
/// element index \p StartIdx at the top level (2 skips a defun's operator
/// and name, exposing the lambda list to deletion moves) and from 0 below.
struct Site {
  std::vector<unsigned> Path;
  bool Compound; ///< atoms are deletion-only; compounds also get replaced
};

void collectSites(Value Node, std::vector<unsigned> &Path, unsigned StartIdx,
                  std::vector<Site> &Out) {
  std::vector<Value> E = elems(Node);
  for (unsigned I = StartIdx; I < E.size(); ++I) {
    Path.push_back(I);
    Out.push_back({Path, E[I].isCons()});
    if (E[I].isCons())
      collectSites(E[I], Path, 0, Out);
    Path.pop_back();
  }
}

/// \p Root with the element at \p Path deleted from its parent list.
Value deleteAt(Value Root, const std::vector<unsigned> &Path, size_t Pos,
               sexpr::Heap &H) {
  std::vector<Value> E = elems(Root);
  if (Pos + 1 == Path.size()) {
    E.erase(E.begin() + Path[Pos]);
  } else {
    E[Path[Pos]] = deleteAt(E[Path[Pos]], Path, Pos + 1, H);
  }
  return buildList(E, H);
}

struct Reduction {
  sexpr::SymbolTable Syms;
  sexpr::Heap H;
  std::vector<Value> Roots;
  std::string Entry;
  std::vector<std::vector<Value>> Grid; ///< one tuple, immediates only
  const driver::AblationConfig &Config;
  OracleOptions Oracle;
  unsigned MaxChecks;
  unsigned Checks = 0;
  std::vector<Divergence> LastDivs;
  /// The failure class being reduced. A candidate only counts as "still
  /// failing" when it diverges the same way (value mismatch stays a value
  /// mismatch); otherwise shrinking drifts into unrelated compile errors.
  Outcome::Kind WantRef = Outcome::Kind::Value;
  Outcome::Kind WantAct = Outcome::Kind::Value;

  Reduction(const driver::AblationConfig &Config) : Config(Config) {}

  std::string render(const std::vector<Value> &Rs) const {
    std::string Out;
    for (Value R : Rs)
      Out += sexpr::toString(R) + "\n";
    return Out;
  }

  bool stillFails(const std::vector<Value> &Rs) {
    if (Checks >= MaxChecks)
      return false;
    ++Checks;
    std::vector<Divergence> Divs =
        checkAgainstConfig(render(Rs), Entry, Grid, Config, Oracle);
    for (Divergence &Dv : Divs) {
      if (Dv.Reference.K != WantRef || Dv.Actual.K != WantAct)
        continue;
      LastDivs = {std::move(Dv)};
      return true;
    }
    return false;
  }

  /// Greedily drops whole top-level forms the failure does not need.
  void dropTopLevel() {
    bool Changed = true;
    while (Changed && Roots.size() > 1) {
      Changed = false;
      for (size_t I = 0; I < Roots.size(); ++I) {
        if (isDefunNamed(Roots[I], Entry))
          continue;
        std::vector<Value> Candidate = Roots;
        Candidate.erase(Candidate.begin() + static_cast<long>(I));
        if (stillFails(Candidate)) {
          Roots = std::move(Candidate);
          Changed = true;
          break;
        }
      }
    }
  }

  /// One pass of subtree replacement; true when a candidate was accepted.
  /// Every acceptance strictly shrinks the tree (a child is a proper
  /// subtree; a constant is an atom), so the caller's loop terminates.
  bool shrinkOnce() {
    for (size_t Ri = 0; Ri < Roots.size(); ++Ri) {
      Value Root = Roots[Ri];
      bool IsDefun = Root.isCons() && !elems(Root).empty() &&
                     elems(Root)[0].isSymbol() &&
                     elems(Root)[0].symbol()->name() == "defun";
      std::vector<Site> Sites;
      std::vector<unsigned> Path;
      collectSites(Root, Path, IsDefun ? 2 : 0, Sites);
      for (const Site &S : Sites) {
        // Deleting the element outright is the strongest shrink; it is
        // what removes dead arguments, &optional binders, unused let
        // bindings, and spare progn forms. Anything that breaks the
        // program is vetoed by stillFails (a convert error never matches
        // the failure class being reduced).
        {
          std::vector<Value> NewRoots = Roots;
          NewRoots[Ri] = deleteAt(Root, S.Path, 0, H);
          if (stillFails(NewRoots)) {
            Roots = std::move(NewRoots);
            return true;
          }
        }
        if (S.Compound) {
          Value Node = getAt(Root, S.Path);
          std::vector<Value> Candidates{Value::fixnum(0), Value::nil()};
          std::vector<Value> Children = elems(Node);
          for (size_t C = 1; C < Children.size(); ++C)
            Candidates.push_back(Children[C]);
          for (Value Cand : Candidates) {
            std::vector<Value> NewRoots = Roots;
            NewRoots[Ri] = replaceAt(Root, S.Path, 0, Cand, H);
            if (stillFails(NewRoots)) {
              Roots = std::move(NewRoots);
              return true;
            }
          }
        }
        if (Checks >= MaxChecks)
          return false;
      }
    }
    return false;
  }
};

std::string describeOutcome(const Outcome &O) {
  switch (O.K) {
  case Outcome::Kind::Value:
    return O.Text;
  case Outcome::Kind::Error:
    return "error: " + O.Text;
  case Outcome::Kind::CompileError:
    return "compile error: " + O.Text;
  }
  return O.Text;
}

} // namespace

unsigned fuzz::countForms(const std::string &Source) {
  sexpr::SymbolTable Syms;
  sexpr::Heap H;
  DiagEngine Diags;
  unsigned N = 0;
  for (Value V : sexpr::readAll(Syms, H, Source, Diags))
    N += countListNodes(V);
  return N;
}

std::optional<ReduceResult>
fuzz::reduceDivergence(const GeneratedProgram &P, const Divergence &D,
                       const driver::AblationConfig &Config,
                       const ReduceOptions &O) {
  Reduction Rd(Config);
  Rd.Entry = P.Entry;
  Rd.Oracle = O.Oracle;
  Rd.MaxChecks = O.MaxChecks;
  if (D.ArgIndex >= P.ArgGrid.size())
    return std::nullopt;
  Rd.Grid = {P.ArgGrid[D.ArgIndex]};
  Rd.WantRef = D.Reference.K;
  Rd.WantAct = D.Actual.K;

  DiagEngine Diags;
  Rd.Roots = sexpr::readAll(Rd.Syms, Rd.H, P.Source, Diags);
  if (Diags.hasErrors() || Rd.Roots.empty())
    return std::nullopt;
  if (!Rd.stillFails(Rd.Roots))
    return std::nullopt; // does not reproduce on the narrowed grid

  Rd.dropTopLevel();
  while (Rd.shrinkOnce())
    ;

  ReduceResult R;
  std::string Pretty;
  for (Value Root : Rd.Roots)
    Pretty += sexpr::toPrettyString(Root) + "\n";
  R.Source = std::move(Pretty);
  R.Config = Config.Name;
  R.Entry = P.Entry;
  R.Args = Rd.Grid.front();
  R.Final = Rd.LastDivs.front();
  R.Forms = 0;
  for (Value Root : Rd.Roots)
    R.Forms += countListNodes(Root);
  R.Checks = Rd.Checks;
  return R;
}

bool fuzz::writeRepro(const std::string &Path, const ReduceResult &R,
                      uint32_t Seed) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << ";; s1lisp-fuzz repro: minimal program diverging from the interpreter\n";
  Out << ";; seed: " << Seed << "\n";
  Out << ";; config: " << R.Config << "\n";
  Out << ";; args:";
  for (Value A : R.Args)
    Out << " " << sexpr::toString(A);
  Out << "\n";
  Out << ";; reference (interpreter): " << describeOutcome(R.Final.Reference)
      << "\n";
  Out << ";; actual (" << R.Config << "): " << describeOutcome(R.Final.Actual)
      << "\n";
  if (!R.Final.StatsJson.empty()) {
    Out << ";; compile stats delta:\n";
    std::string Line;
    for (char C : R.Final.StatsJson) {
      if (C == '\n') {
        Out << ";;   " << Line << "\n";
        Line.clear();
      } else {
        Line += C;
      }
    }
    if (!Line.empty())
      Out << ";;   " << Line << "\n";
  }
  Out << "\n" << R.Source << "\n";
  Out << ";; Replays the divergence: main calls the entry point on the\n";
  Out << ";; failing arguments.\n";
  Out << "(defun main ()\n  (" << R.Entry;
  for (Value A : R.Args)
    Out << " " << sexpr::toString(A);
  Out << "))\n";
  return static_cast<bool>(Out);
}
