//===- fuzz/Reducer.h - Delta-debugging reducer -----------------*- C++ -*-===//
///
/// \file
/// Shrinks a diverging program to a minimal failing form. Reduction is
/// hierarchical delta debugging over the s-expression tree: first drop
/// whole top-level defuns the failure does not need, then repeatedly
/// replace compound subexpressions with one of their own children or with
/// a constant, keeping a candidate only when the single offending
/// configuration still diverges from the interpreter on the single
/// offending argument tuple. Every accepted step strictly shrinks the
/// tree, so reduction terminates.
///
/// The result can be written as a runnable repro file: a commented header
/// (seed, configuration, arguments, both outcomes, and the src/stats
/// counter delta of the offending compile), the minimal source, and a
/// (defun main ...) wrapper that calls the entry point on the failing
/// arguments — so `s1lispc --run repro.lisp` replays the miscompile.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_FUZZ_REDUCER_H
#define S1LISP_FUZZ_REDUCER_H

#include "fuzz/Oracle.h"

#include <optional>
#include <string>

namespace s1lisp {
namespace fuzz {

struct ReduceOptions {
  /// Cap on oracle evaluations; reduction stops (keeping the best
  /// candidate so far) when the budget runs out.
  unsigned MaxChecks = 2000;
  OracleOptions Oracle;
};

struct ReduceResult {
  std::string Source;              ///< minimal failing source
  std::string Config;              ///< offending configuration name
  std::string Entry;               ///< entry function name
  std::vector<sexpr::Value> Args;  ///< the one failing argument tuple
  Divergence Final;                ///< divergence of the minimal program
  unsigned Forms = 0;              ///< countForms(Source)
  unsigned Checks = 0;             ///< oracle evaluations spent
};

/// Number of compound forms (list nodes) in \p Source — the metric the
/// acceptance bar "reduces to <= 10 forms" is stated in.
unsigned countForms(const std::string &Source);

/// Shrinks \p P against \p Config, starting from divergence \p D (one of
/// checkProgram's results for that configuration). Returns nullopt when
/// the divergence does not reproduce (e.g. it was environmental).
std::optional<ReduceResult> reduceDivergence(const GeneratedProgram &P,
                                             const Divergence &D,
                                             const driver::AblationConfig &Config,
                                             const ReduceOptions &O = {});

/// Writes the runnable repro file described above. \p Seed is recorded in
/// the header; pass 0 when unknown. Returns false on I/O failure.
bool writeRepro(const std::string &Path, const ReduceResult &R, uint32_t Seed);

} // namespace fuzz
} // namespace s1lisp

#endif // S1LISP_FUZZ_REDUCER_H
