//===- fuzz/Oracle.cpp ----------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "sexpr/Printer.h"
#include "stats/Stats.h"
#include "support/Parallel.h"
#include "vm/Machine.h"

#include <algorithm>

using namespace s1lisp;
using namespace s1lisp::fuzz;
using sexpr::Value;

ErrorClass fuzz::classifyError(const std::string &Message) {
  auto Has = [&](const char *Needle) {
    return Message.find(Needle) != std::string::npos;
  };
  if (Has("stack overflow"))
    return ErrorClass::Other;
  if (Has("overflow"))
    return ErrorClass::Overflow;
  if (Has("wrong type"))
    return ErrorClass::WrongType;
  if (Has("wrong number of arguments"))
    return ErrorClass::WrongArgCount;
  if (Has("division by zero"))
    return ErrorClass::DivisionByZero;
  if (Has("fuel"))
    return ErrorClass::Fuel;
  if (Has("undefined function") || Has("not defined"))
    return ErrorClass::Undefined;
  if (Has("non-function"))
    return ErrorClass::NotAFunction;
  if (Has("unbound"))
    return ErrorClass::Unbound;
  return ErrorClass::Other;
}

Outcome Outcome::value(std::string Printed) {
  Outcome O;
  O.K = Kind::Value;
  O.Text = std::move(Printed);
  return O;
}

Outcome Outcome::error(std::string Message) {
  Outcome O;
  O.K = Kind::Error;
  O.EC = classifyError(Message);
  O.Text = std::move(Message);
  return O;
}

Outcome Outcome::compileError(std::string Message) {
  Outcome O;
  O.K = Kind::CompileError;
  O.EC = ErrorClass::Other;
  O.Text = std::move(Message);
  return O;
}

namespace {

/// One interpreter run from a fresh evaluator (no state carries over
/// between grid points, in particular after an error).
Outcome interpRun(ir::Module &M, const std::string &Entry,
                  const std::vector<Value> &Args, uint64_t Fuel,
                  uint64_t GcEvery) {
  interp::Interpreter I(M);
  I.setFuel(Fuel);
  if (GcEvery) {
    I.setGcEvery(GcEvery);
    I.setGcVerify(true);
  }
  std::vector<interp::RtValue> RtArgs;
  RtArgs.reserve(Args.size());
  for (Value V : Args)
    RtArgs.push_back(interp::RtValue::data(V));
  interp::Interpreter::Result R = I.call(Entry, RtArgs);
  if (!R.Ok)
    return Outcome::error(R.Error);
  return Outcome::value(R.Value.str());
}

/// One simulator run from a fresh machine (a trap leaves a machine in an
/// undefined state, so each grid point gets its own address space). The
/// pre-decoded program is shared across every machine built for the same
/// compile, so the grid pays for decoding once.
Outcome vmRun(const s1::Program &P, ir::Module &M, const std::string &Entry,
              const std::vector<Value> &Args, uint64_t Fuel, vm::Engine Eng,
              uint64_t GcEvery,
              const std::shared_ptr<const vm::DecodedProgram> &Decoded) {
  vm::Machine VM(P, M.Syms, M.DataHeap);
  VM.setFuel(Fuel);
  VM.setEngine(Eng);
  VM.setGcEvery(GcEvery);
  if (Decoded)
    VM.setDecodedProgram(Decoded);
  vm::Machine::RunResult R = VM.call(Entry, Args);
  if (!R.Ok)
    return Outcome::error(R.Error);
  return Outcome::value(R.Result ? sexpr::toString(*R.Result)
                                 : "#<undecodable>");
}

/// The fixnum-width / fuel taint: either side overflowing (or running out
/// of fuel) makes the grid point incomparable across engines.
bool tainted(const Outcome &O) {
  return O.EC == ErrorClass::Overflow || O.EC == ErrorClass::Fuel;
}

void compareOne(const Outcome &Ref, const Outcome &Act, bool Optimizes,
                const std::string &Config, size_t ArgIndex,
                const std::string &StatsJson, CheckResult &R) {
  ++R.RowsCompared;
  if (tainted(Ref) || tainted(Act)) {
    ++R.ToleratedOverflows;
    return;
  }
  if (Ref.K == Outcome::Kind::Error && Act.K == Outcome::Kind::Value &&
      Optimizes) {
    ++R.ToleratedElisions;
    return;
  }
  bool Agree = false;
  if (Ref.K == Outcome::Kind::Value && Act.K == Outcome::Kind::Value)
    Agree = Ref.Text == Act.Text;
  else if (Ref.K == Outcome::Kind::Error && Act.K == Outcome::Kind::Error)
    Agree = Ref.EC == Act.EC;
  if (!Agree)
    R.Divergences.push_back({Config, ArgIndex, Ref, Act, StatsJson});
}

} // namespace

CheckResult fuzz::checkProgram(const GeneratedProgram &P,
                               const OracleOptions &O) {
  CheckResult R;
  std::vector<driver::AblationConfig> Matrix =
      O.Configs.empty() ? driver::ablationMatrix() : O.Configs;

  // The reference: the unoptimized interpreter over the converted tree.
  ir::Module RefM;
  DiagEngine Diags;
  if (!frontend::convertSource(RefM, P.Source, Diags)) {
    R.St = CheckResult::Status::ConvertError;
    R.ConvertMessage = Diags.str();
    return R;
  }
  std::vector<Outcome> Ref;
  Ref.reserve(P.ArgGrid.size());
  for (const std::vector<Value> &Args : P.ArgGrid)
    Ref.push_back(interpRun(RefM, P.Entry, Args, O.InterpFuel, O.GcEvery));

  // Counter collection is globally gated; deltas need it on. Capturing
  // per-configuration deltas snapshots the one shared registry, so it
  // forces the serial path regardless of the requested job count.
  bool PrevStatsEnabled = stats::enabled();
  if (O.CaptureStats)
    stats::setEnabled(true);
  unsigned Jobs = O.CaptureStats ? 1 : std::max(1u, O.Jobs);

  // Every configuration is independent: it deep-clones the one converted
  // module (sharing the frontend work across the whole matrix instead of
  // re-reading and re-converting the source per config) and runs the grid
  // on its own machines, merging into a per-config result slot. The clone
  // only reads RefM, so concurrent workers can clone from it; worker
  // threads have stats/timing collection off (thread-local), so concurrent
  // compiles never touch the registry. Per-config stats deltas therefore
  // cover optimize + codegen only — frontend conversion happens once,
  // before any config runs.
  std::vector<CheckResult> PerConfig(Matrix.size());
  support::parallelFor(Matrix.size(), Jobs, [&](size_t C) {
    const driver::AblationConfig &Config = Matrix[C];
    CheckResult &CR = PerConfig[C];
    ir::Module M;
    RefM.clone(M);
    stats::StatsSnapshot Before;
    if (O.CaptureStats)
      Before = stats::snapshotStats();
    driver::CompileOutcome Out = driver::compileModule(M, Config.Opts);
    std::string StatsJson =
        O.CaptureStats ? stats::reportStatsDeltaJson(Before) : std::string();
    if (!Out.Ok) {
      // The reference converted this program, so failing to compile it is
      // itself a divergence, reported once against the first grid row.
      CR.Divergences.push_back({Config.Name, 0,
                                Ref.empty() ? Outcome() : Ref.front(),
                                Outcome::compileError(Out.Error), StatsJson});
      return;
    }
    std::shared_ptr<const vm::DecodedProgram> Decoded =
        O.Engine != vm::Engine::Legacy ? vm::predecode(Out.Program) : nullptr;
    bool Optimizes = Config.Opts.Optimize || Config.Opts.Cse;
    for (size_t I = 0; I < P.ArgGrid.size(); ++I) {
      Outcome Act = vmRun(Out.Program, M, P.Entry, P.ArgGrid[I], O.VmFuel,
                          O.Engine, O.GcEvery, Decoded);
      compareOne(Ref[I], Act, Optimizes, Config.Name, I, StatsJson, CR);
    }
  });
  // Merge in matrix order so reports are deterministic under any schedule.
  for (CheckResult &CR : PerConfig) {
    R.RowsCompared += CR.RowsCompared;
    R.ToleratedOverflows += CR.ToleratedOverflows;
    R.ToleratedElisions += CR.ToleratedElisions;
    for (Divergence &D : CR.Divergences)
      R.Divergences.push_back(std::move(D));
  }
  if (O.CaptureStats)
    stats::setEnabled(PrevStatsEnabled);
  R.St = R.Divergences.empty() ? CheckResult::Status::Agree
                               : CheckResult::Status::Diverged;
  return R;
}

std::vector<Divergence> fuzz::checkAgainstConfig(
    const std::string &Source, const std::string &Entry,
    const std::vector<std::vector<Value>> &Grid,
    const driver::AblationConfig &Config, const OracleOptions &O) {
  GeneratedProgram P;
  P.Source = Source;
  P.Entry = Entry;
  P.ArgGrid = Grid;
  OracleOptions Single = O;
  Single.Configs = {Config};
  // A candidate that no longer converts is simply not a failing candidate.
  return checkProgram(P, Single).Divergences;
}
