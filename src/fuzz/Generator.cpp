//===- fuzz/Generator.cpp -------------------------------------------------===//

#include "fuzz/Generator.h"

#include <algorithm>
#include <cassert>
#include <random>

using namespace s1lisp;
using namespace s1lisp::fuzz;
using sexpr::Value;

bool fuzz::applyWeightOverride(GenWeights &W, std::string_view Spec) {
  struct Field {
    const char *Name;
    unsigned GenWeights::*Member;
  };
  static const Field Fields[] = {
      {"arith", &GenWeights::Arith},     {"if", &GenWeights::If},
      {"let", &GenWeights::Let},         {"let*", &GenWeights::LetStar},
      {"cond", &GenWeights::Cond},       {"case", &GenWeights::Case},
      {"andor", &GenWeights::AndOr},     {"whenunless", &GenWeights::WhenUnless},
      {"progn", &GenWeights::Progn},     {"setq", &GenWeights::Setq},
      {"do", &GenWeights::Do},           {"listops", &GenWeights::ListOps},
      {"float", &GenWeights::FloatArith},{"call", &GenWeights::Call},
  };
  while (!Spec.empty()) {
    size_t Comma = Spec.find(',');
    std::string_view Pair = Spec.substr(0, Comma);
    Spec = Comma == std::string_view::npos ? std::string_view()
                                           : Spec.substr(Comma + 1);
    size_t Eq = Pair.find('=');
    if (Eq == std::string_view::npos || Eq == 0 || Eq + 1 == Pair.size())
      return false;
    std::string_view Name = Pair.substr(0, Eq);
    std::string_view Num = Pair.substr(Eq + 1);
    unsigned V = 0;
    for (char C : Num) {
      if (C < '0' || C > '9')
        return false;
      V = V * 10 + static_cast<unsigned>(C - '0');
    }
    bool Found = false;
    for (const Field &F : Fields)
      if (Name == F.Name) {
        W.*F.Member = V;
        Found = true;
        break;
      }
    if (!Found)
      return false;
  }
  return true;
}

namespace {

/// Static type a generated expression is steered toward. Most flows are
/// type-correct; a few deliberately are not, so error paths get coverage.
enum class Ty { Int, Float, List };

struct ScopeVar {
  std::string Name;
  Ty T;
  unsigned MinLen = 0; ///< for lists: how many elements are guaranteed
};

struct HelperSig {
  std::string Name;
  unsigned Required = 1;
  unsigned Optionals = 0;
  bool Rest = false;
};

class Gen {
public:
  Gen(uint32_t Seed, const GenOptions &O) : Rng(Seed), O(O) {}

  GeneratedProgram run() {
    GeneratedProgram P;
    std::string Src;
    for (unsigned H = 0; H < O.Helpers; ++H)
      Src += helperDefun(H) + "\n\n";

    // The entry function.
    Scope = {{"a", Ty::Int}, {"b", Ty::Int}};
    if (O.Floats)
      Scope.push_back({"c", Ty::Float});
    Budget = static_cast<int>(O.SizeBudget);
    std::string Body = anyExpr(O.MaxDepth);
    Src += "(defun " + P.Entry + " (a b" +
           std::string(O.Floats ? " c" : "") + ")\n  " + Body + ")\n";

    P.Source = std::move(Src);
    static const int64_t As[] = {-5, 0, 1, 4, 2, -1};
    static const int64_t Bs[] = {-2, 3, 7, -1, 2, 0};
    static const double Cs[] = {0.5, -1.5, 2.25};
    for (size_t I = 0; I < 6; ++I) {
      std::vector<Value> Tuple{Value::fixnum(As[I]), Value::fixnum(Bs[I])};
      if (O.Floats)
        Tuple.push_back(Value::flonum(Cs[I % 3]));
      P.ArgGrid.push_back(std::move(Tuple));
    }
    return P;
  }

private:
  std::mt19937 Rng;
  const GenOptions &O;
  int Budget = 0;
  unsigned NameCounter = 0;
  std::vector<ScopeVar> Scope;
  std::vector<HelperSig> Helpers; ///< helpers already emitted (callable)

  int pick(int N) { return std::uniform_int_distribution<int>(0, N - 1)(Rng); }
  bool chance(int Pct) { return pick(100) < Pct; }
  std::string fresh(const char *Stem) {
    return std::string(Stem) + std::to_string(NameCounter++);
  }
  bool spend() {
    if (Budget <= 0)
      return false;
    --Budget;
    return true;
  }

  /// Weighted choice over (weight, tag); -1 when all weights are zero.
  int choose(const std::vector<std::pair<unsigned, int>> &C) {
    unsigned Total = 0;
    for (const auto &[W, Tag] : C)
      Total += W;
    if (Total == 0)
      return -1;
    unsigned R = std::uniform_int_distribution<unsigned>(0, Total - 1)(Rng);
    for (const auto &[W, Tag] : C) {
      if (R < W)
        return Tag;
      R -= W;
    }
    return C.back().second;
  }

  const ScopeVar *someVar(Ty T, unsigned MinLen = 0) {
    std::vector<const ScopeVar *> Matches;
    for (const ScopeVar &V : Scope)
      if (V.T == T && (T != Ty::List || V.MinLen >= MinLen))
        Matches.push_back(&V);
    if (Matches.empty())
      return nullptr;
    return Matches[static_cast<size_t>(pick(static_cast<int>(Matches.size())))];
  }

  //===--------------------------------------------------------------------===//
  // Atoms
  //===--------------------------------------------------------------------===//

  std::string intAtom() {
    if (const ScopeVar *V = chance(65) ? someVar(Ty::Int) : nullptr)
      return V->Name;
    static const int64_t Consts[] = {-3, -2, -1, 0, 1, 2, 3, 7};
    return std::to_string(Consts[pick(8)]);
  }

  std::string floatAtom() {
    if (const ScopeVar *V = chance(55) ? someVar(Ty::Float) : nullptr)
      return V->Name;
    // Binary-exact constants so folded and runtime arithmetic print alike
    // down to the last digit on every engine.
    static const char *Consts[] = {"0.5", "-1.5", "2.0", "0.25", "3.5", "-0.125"};
    return Consts[pick(6)];
  }

  /// An atom of any numeric type — the deliberate wrong-type seed for
  /// predicates like oddp, which only accept fixnums.
  std::string numAtom() {
    return (O.Floats && chance(30)) ? floatAtom() : intAtom();
  }

  //===--------------------------------------------------------------------===//
  // Expression grammar
  //===--------------------------------------------------------------------===//

  std::string anyExpr(unsigned D) {
    switch (choose({{6, 0}, {O.Floats ? 2u : 0u, 1}, {1, 2}, {1, 3}})) {
    case 1:
      return floatExpr(D);
    case 2:
      return listExpr(D, 0);
    case 3:
      return boolExpr(D);
    default:
      return intExpr(D);
    }
  }

  std::string intExpr(unsigned D) {
    if (D == 0 || !spend())
      return intAtom();
    const GenWeights &W = O.W;
    int Tag = choose({{W.Arith, 0},
                      {W.If, 1},
                      {W.Let, 2},
                      {W.LetStar, 3},
                      {W.Cond, 4},
                      {W.Case, 5},
                      {W.Progn, 6},
                      {W.Setq, 7},
                      {W.Do, 8},
                      {W.ListOps, 9},
                      {Helpers.empty() ? 0u : W.Call, 10},
                      {O.Floats ? W.FloatArith : 0u, 11}});
    switch (Tag) {
    default:
      return arithExpr(D);
    case 1:
      return "(if " + boolExpr(D - 1) + " " + intExpr(D - 1) + " " +
             intExpr(D - 1) + ")";
    case 2:
      return letExpr(D, /*Star=*/false);
    case 3:
      return letExpr(D, /*Star=*/true);
    case 4:
      return condExpr(D);
    case 5:
      return caseExpr(D);
    case 6:
      return "(progn " + statement(D - 1) + " " + intExpr(D - 1) + ")";
    case 7:
      return setqExpr(D);
    case 8:
      return doExpr(D);
    case 9:
      return pick(2) == 0 ? "(car " + listExpr(D - 1, 1) + ")"
                          : "(length " + listExpr(D - 1, 0) + ")";
    case 10:
      return callExpr(D);
    case 11:
      // A float flowing back into an integer context through a generic
      // comparison — cross-representation without changing the result type.
      return "(if (< " + floatExpr(D - 1) + " " + intAtom() + ") " +
             intExpr(D - 1) + " " + intExpr(D - 1) + ")";
    }
  }

  std::string arithExpr(unsigned D) {
    static const int64_t Divisors[] = {2, 3, 5, 7};
    switch (pick(9)) {
    case 0:
      return "(+ " + intExpr(D - 1) + " " + intExpr(D - 1) + ")";
    case 1:
      return "(- " + intExpr(D - 1) + " " + intExpr(D - 1) + ")";
    case 2:
      return "(* " + intExpr(D - 1) + " " + intAtom() + ")";
    case 3:
      return "(1+ " + intExpr(D - 1) + ")";
    case 4:
      return "(1- " + intExpr(D - 1) + ")";
    case 5:
      return "(abs " + intExpr(D - 1) + ")";
    case 6:
      return "(mod " + intExpr(D - 1) + " " +
             std::to_string(Divisors[pick(4)]) + ")";
    case 7:
      return "(floor " + intExpr(D - 1) + " " +
             std::to_string(Divisors[pick(4)]) + ")";
    default:
      return std::string(pick(2) == 0 ? "(min " : "(max ") + intExpr(D - 1) +
             " " + intExpr(D - 1) + ")";
    }
  }

  std::string letExpr(unsigned D, bool Star) {
    unsigned NBindings = Star ? 2 : 1 + static_cast<unsigned>(pick(2));
    size_t Mark = Scope.size();
    std::string Out = Star ? "(let* (" : "(let (";
    std::vector<ScopeVar> Deferred; // plain let: inits must not see siblings
    for (unsigned I = 0; I < NBindings; ++I) {
      ScopeVar V{fresh("v"), Ty::Int, 0};
      if (O.Floats && chance(20))
        V.T = Ty::Float;
      std::string Init = V.T == Ty::Float ? floatExpr(D - 1) : intExpr(D - 1);
      Out += (I ? " (" : "(") + V.Name + " " + Init + ")";
      if (Star)
        Scope.push_back(V);
      else
        Deferred.push_back(V);
    }
    for (const ScopeVar &V : Deferred)
      Scope.push_back(V);
    Out += ") " + intExpr(D - 1) + ")";
    Scope.resize(Mark);
    return Out;
  }

  std::string condExpr(unsigned D) {
    unsigned NClauses = 1 + static_cast<unsigned>(pick(2));
    std::string Out = "(cond ";
    for (unsigned I = 0; I < NClauses; ++I)
      Out += "(" + boolExpr(D - 1) + " " + intExpr(D - 1) + ") ";
    Out += "(t " + intExpr(D - 1) + "))";
    return Out;
  }

  std::string caseExpr(unsigned D) {
    std::string Out = "(case " + intExpr(D - 1) + " ((0 1) " + intExpr(D - 1) +
                      ")";
    if (chance(50))
      Out += " (2 " + intExpr(D - 1) + ")";
    if (chance(35))
      Out += " ((-1 -2) " + intExpr(D - 1) + ")";
    Out += " (t " + intExpr(D - 1) + "))";
    return Out;
  }

  std::string setqExpr(unsigned D) {
    const ScopeVar *V = someVar(Ty::Int);
    if (!V)
      return arithExpr(D);
    // Copy the name: the recursion below may grow Scope and move it.
    std::string Name = V->Name;
    std::string Rest = intExpr(D - 1);
    return "(progn (setq " + Name + " (+ " + Name + " " + intAtom() + ")) " +
           Rest + ")";
  }

  std::string doExpr(unsigned D) {
    std::string I = fresh("i"), Acc = fresh("acc");
    std::string Init = intExpr(D - 1);
    size_t Mark = Scope.size();
    Scope.push_back({I, Ty::Int});
    Scope.push_back({Acc, Ty::Int});
    std::string Step = "(+ " + Acc + " " + (chance(60) ? I : intAtom()) + ")";
    int Limit = 2 + pick(3);
    std::string Body = chance(30) ? " " + statement(D - 1) : "";
    Scope.resize(Mark);
    return "(do ((" + I + " 0 (1+ " + I + ")) (" + Acc + " " + Init + " " +
           Step + ")) ((= " + I + " " + std::to_string(Limit) + ") " + Acc +
           ")" + Body + ")";
  }

  std::string callExpr(unsigned D) {
    const HelperSig &H =
        Helpers[static_cast<size_t>(pick(static_cast<int>(Helpers.size())))];
    unsigned N = H.Required + static_cast<unsigned>(pick(static_cast<int>(H.Optionals) + 1));
    if (H.Rest)
      N += static_cast<unsigned>(pick(3));
    std::string Out = "(" + H.Name;
    for (unsigned A = 0; A < N; ++A)
      Out += " " + (D > 1 && chance(50) ? intExpr(D - 1) : intAtom());
    return Out + ")";
  }

  std::string boolExpr(unsigned D) {
    if (D == 0 || !spend()) {
      switch (pick(4)) {
      case 0:
        return "(oddp " + intAtom() + ")";
      case 1:
        return "(zerop " + intAtom() + ")";
      case 2:
        return "(minusp " + intAtom() + ")";
      default:
        return pick(2) == 0 ? "t" : "nil";
      }
    }
    const GenWeights &W = O.W;
    int Tag = choose({{W.Arith, 0},
                      {W.AndOr, 1},
                      {W.ListOps, 2},
                      {O.Floats ? W.FloatArith : 0u, 3},
                      {O.Floats ? 1u : 0u, 4}});
    switch (Tag) {
    default: {
      static const char *Cmp[] = {"<", ">", "=", "<=", ">=", "/="};
      if (chance(45))
        return std::string("(") + Cmp[pick(6)] + " " + intExpr(D - 1) + " " +
               intExpr(D - 1) + ")";
      static const char *Pred[] = {"oddp", "evenp", "zerop", "plusp", "minusp"};
      return std::string("(") + Pred[pick(5)] + " " + intExpr(D - 1) + ")";
    }
    case 1:
      switch (pick(3)) {
      case 0:
        return "(and " + boolExpr(D - 1) + " " + boolExpr(D - 1) + ")";
      case 1:
        return "(or " + boolExpr(D - 1) + " " + boolExpr(D - 1) + ")";
      default:
        return "(not " + boolExpr(D - 1) + ")";
      }
    case 2:
      return pick(2) == 0 ? "(consp " + listExpr(D - 1, 0) + ")"
                          : "(null " + listExpr(D - 1, 0) + ")";
    case 3: {
      static const char *FCmp[] = {"<$f", ">$f", "<=$f", ">=$f", "=$f"};
      return std::string("(") + FCmp[pick(5)] + " " + floatExpr(D - 1) + " " +
             floatExpr(D - 1) + ")";
    }
    case 4:
      // Deliberate wrong-type seed: oddp over an atom of either numeric
      // type. The oracle checks both engines report the same error class.
      return "(oddp " + numAtom() + ")";
    }
  }

  std::string floatExpr(unsigned D) {
    if (D == 0 || !spend())
      return floatAtom();
    switch (pick(8)) {
    case 0:
      return "(+$f " + floatExpr(D - 1) + " " + floatExpr(D - 1) + ")";
    case 1:
      return "(-$f " + floatExpr(D - 1) + " " + floatExpr(D - 1) + ")";
    case 2:
      return "(*$f " + floatExpr(D - 1) + " " + floatAtom() + ")";
    case 3:
      return std::string(pick(2) == 0 ? "(max$f " : "(min$f ") +
             floatExpr(D - 1) + " " + floatExpr(D - 1) + ")";
    case 4:
      return pick(2) == 0 ? "(abs$f " + floatExpr(D - 1) + ")"
                          : "(neg$f " + floatExpr(D - 1) + ")";
    case 5:
      return "(float " + intAtom() + ")";
    case 6:
      // Generic arithmetic over a fixnum/flonum mix (contagion to float).
      return std::string(pick(2) == 0 ? "(+ " : "(* ") + intAtom() + " " +
             floatExpr(D - 1) + ")";
    default:
      return "(if " + boolExpr(D - 1) + " " + floatExpr(D - 1) + " " +
             floatAtom() + ")";
    }
  }

  /// A list-typed expression with at least \p MinLen known elements.
  std::string listExpr(unsigned D, unsigned MinLen) {
    if (D == 0 || Budget <= 0) {
      if (MinLen == 0 && chance(20))
        return "nil";
      std::string Out = "(list";
      unsigned N = std::max(MinLen, 1 + static_cast<unsigned>(pick(2)));
      for (unsigned I = 0; I < N; ++I)
        Out += " " + intAtom();
      return Out + ")";
    }
    if (MinLen == 0)
      if (const ScopeVar *V = chance(25) ? someVar(Ty::List) : nullptr)
        return V->Name;
    spend();
    switch (pick(4)) {
    case 0: {
      std::string Out = "(list";
      unsigned N = std::max(MinLen, 1 + static_cast<unsigned>(pick(3)));
      for (unsigned I = 0; I < N; ++I)
        Out += " " + intExpr(D - 1);
      return Out + ")";
    }
    case 1:
      return "(cons " + intExpr(D - 1) + " " +
             listExpr(D - 1, MinLen > 0 ? MinLen - 1 : 0) + ")";
    case 2:
      return "(reverse " + listExpr(D - 1, MinLen) + ")";
    default:
      return "(cdr " + listExpr(D - 1, MinLen + 1) + ")";
    }
  }

  /// Statement position (progn/do bodies): value is discarded.
  std::string statement(unsigned D) {
    const GenWeights &W = O.W;
    int Tag = choose({{W.WhenUnless, 0}, {W.Setq, 1}, {3, 2}});
    switch (Tag) {
    case 0:
      return std::string(pick(2) == 0 ? "(when " : "(unless ") +
             boolExpr(D - 1) + " " + intExpr(D - 1) + ")";
    case 1: {
      const ScopeVar *V = someVar(Ty::Int);
      if (V) {
        std::string Name = V->Name;
        return "(setq " + Name + " (+ " + Name + " " + intAtom() + "))";
      }
      return intExpr(D - 1);
    }
    default:
      return anyExpr(D - 1);
    }
  }

  //===--------------------------------------------------------------------===//
  // Helper defuns
  //===--------------------------------------------------------------------===//

  std::string helperDefun(unsigned Index) {
    HelperSig Sig;
    Sig.Name = "h" + std::to_string(Index);
    Sig.Required = 1 + static_cast<unsigned>(pick(2));
    Sig.Optionals = O.Optionals ? static_cast<unsigned>(pick(3)) : 0;
    // The compiler does not accept &optional and &rest together, so a
    // helper gets at most one of the two.
    Sig.Rest = O.Rest && Sig.Optionals == 0 && chance(35);

    Scope.clear();
    std::string Header = "(defun " + Sig.Name + " (";
    std::vector<std::string> Params;
    for (unsigned I = 0; I < Sig.Required; ++I) {
      std::string P = "p" + std::to_string(Index) + std::to_string(I);
      Header += (I ? " " : "") + P;
      Params.push_back(P);
      Scope.push_back({P, Ty::Int});
    }
    if (Sig.Optionals) {
      Header += " &optional";
      for (unsigned I = 0; I < Sig.Optionals; ++I) {
        std::string Q = "q" + std::to_string(Index) + std::to_string(I);
        std::string Default;
        switch (pick(3)) {
        case 0:
          Default = std::to_string(pick(5) - 2);
          break;
        case 1: // default referencing an earlier parameter
          Default = Params[static_cast<size_t>(
              pick(static_cast<int>(Params.size())))];
          break;
        default:
          Default = "(+ " +
                    Params[static_cast<size_t>(
                        pick(static_cast<int>(Params.size())))] +
                    " 1)";
          break;
        }
        Header += " (" + Q + " " + Default + ")";
        Params.push_back(Q);
        Scope.push_back({Q, Ty::Int});
      }
    }
    if (Sig.Rest) {
      Header += " &rest r" + std::to_string(Index);
      Scope.push_back({"r" + std::to_string(Index), Ty::List, 0});
    }
    Header += ")";

    Budget = std::max(8, static_cast<int>(O.SizeBudget) / 3);
    unsigned Depth = std::min(O.MaxDepth, 3u);
    std::string Body = intExpr(Depth);
    Helpers.push_back(Sig); // callable only by later functions
    Scope.clear();
    return Header + "\n  " + Body + ")";
  }
};

} // namespace

Generator::Generator(uint32_t Seed, GenOptions Opts)
    : Opts(std::move(Opts)), Seed(Seed) {}

GeneratedProgram Generator::generate() {
  Gen G(Seed, Opts);
  return G.run();
}
