//===- fuzz/Generator.h - Grammar-aware random program generator -*- C++ -*-===//
///
/// \file
/// A seeded generator of well-formed programs over the whole accepted
/// source language: let/let*/cond/and/or/when/unless/progn/setq/do/case,
/// lambda lists with &optional defaults and &rest, list primitives,
/// fixnum/flonum mixes, and nested defun calls. Every program comes with
/// an argument grid for the differential oracle (fuzz/Oracle.h).
///
/// Generation is type-directed (fixnum / flonum / boolean / list
/// contexts) so most programs compute values rather than trip over type
/// errors, but deliberate cross-type flows remain (car of a possibly
/// empty list, generic arithmetic over mixes) so the error paths are
/// exercised too — the oracle compares error outcomes, not just values.
///
/// A weights table scales each construct's share of the grammar so a
/// soak run can stress one construct (s1lisp-fuzz --weights=do=20), and a
/// size/depth budget bounds every program.
///
//===----------------------------------------------------------------------===//

#ifndef S1LISP_FUZZ_GENERATOR_H
#define S1LISP_FUZZ_GENERATOR_H

#include "sexpr/Value.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace s1lisp {
namespace fuzz {

/// Relative weights of the grammar's productions. Zero disables a
/// construct entirely (the generated source will not contain it).
struct GenWeights {
  unsigned Arith = 8;      ///< + - * 1+ 1- abs mod floor min max
  unsigned If = 4;
  unsigned Let = 4;        ///< single- and two-binding let
  unsigned LetStar = 2;
  unsigned Cond = 2;
  unsigned Case = 2;
  unsigned AndOr = 3;      ///< and/or/not inside boolean contexts
  unsigned WhenUnless = 2; ///< when/unless in statement positions
  unsigned Progn = 2;
  unsigned Setq = 2;
  unsigned Do = 2;         ///< counted (do ...) accumulation loops
  unsigned ListOps = 3;    ///< list/cons/reverse/car/cdr/length
  unsigned FloatArith = 3; ///< $f operators and generic fixnum/flonum mixes
  unsigned Call = 4;       ///< calls to the generated helper defuns
};

/// Per-name weight override, e.g. applyWeightOverride(W, "do=20").
/// Accepts the lowercase field names: arith, if, let, let*, cond, case,
/// andor, whenunless, progn, setq, do, listops, float, call.
/// Returns false on an unknown name or malformed spec.
bool applyWeightOverride(GenWeights &W, std::string_view Spec);

struct GenOptions {
  unsigned MaxDepth = 4;   ///< expression nesting budget
  unsigned SizeBudget = 40;///< compound forms per program (approximate)
  unsigned Helpers = 2;    ///< helper defuns the entry function may call
  bool Floats = true;      ///< flonum subgrammar + one flonum entry param
  bool Optionals = true;   ///< helpers may declare &optional parameters
  bool Rest = true;        ///< helpers may declare &rest parameters
  GenWeights W;
};

/// A generated program plus the argument grid the oracle runs it on.
/// Grid values are immediates (fixnums/flonums), so no heap is needed.
struct GeneratedProgram {
  std::string Source;      ///< helper defuns followed by the entry defun
  std::string Entry = "fut";
  std::vector<std::vector<sexpr::Value>> ArgGrid;
};

/// One seeded generator instance. The same (seed, options) pair always
/// produces the same program.
class Generator {
public:
  explicit Generator(uint32_t Seed, GenOptions Opts = {});

  GeneratedProgram generate();

private:
  struct Impl;
  GenOptions Opts;
  uint32_t Seed;
};

} // namespace fuzz
} // namespace s1lisp

#endif // S1LISP_FUZZ_GENERATOR_H
