//===- tools/s1lispc.cpp - The S1LISP command-line compiler driver --------===//
//
// Drives the whole Table 1 pipeline over real .lisp files: compile,
// print listings, run on the S-1 simulator (or the interpreter, as the
// semantic oracle), with every CompilerOptions ablation switch exposed
// and the full observability surface — phase timing, the statistics
// registry, and structured optimization remarks — on tap.
//
//===----------------------------------------------------------------------===//

#include "driver/Ablation.h"
#include "driver/Compiler.h"
#include "frontend/Convert.h"
#include "interp/Interp.h"
#include "service/Client.h"
#include "sexpr/Printer.h"
#include "stats/Remark.h"
#include "stats/Stats.h"
#include "vm/Machine.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace s1lisp;

namespace {

const char *UsageText =
    "usage: s1lispc [options] file.lisp...\n"
    "\n"
    "Compiles LISP source files with the S-1 pipeline (conversion ->\n"
    "optimization -> annotation -> TNBIND -> code generation) and\n"
    "optionally runs the result on the S-1/64 simulator.\n"
    "\n"
    "Execution:\n"
    "  --run[=ENTRY]       compile, then call ENTRY (default \"main\") with\n"
    "                      no arguments on the simulator\n"
    "  --interp[=ENTRY]    evaluate ENTRY with the tree-walking interpreter\n"
    "                      instead (the semantic oracle)\n"
    "  --engine=E          simulator dispatch engine: \"threaded\" (pre-decoded\n"
    "                      direct-threaded loop, default), \"native\" (template\n"
    "                      JIT over the pre-decoded stream; x86-64 only, falls\n"
    "                      back to threaded elsewhere) or \"legacy\" (the\n"
    "                      original per-step switch)\n"
    "  --listing           print the generated assembly (Table 4 style)\n"
    "  --server=SOCKET     submit the compile to a running s1lispd at the\n"
    "                      given unix socket instead of compiling locally\n"
    "                      (same output; warm daemons reuse cached units)\n"
    "\n"
    "Garbage collection (--run / --interp):\n"
    "  --gc-every=N        collect the runtime heap every N cons\n"
    "                      allocations (0 = never, the default); results\n"
    "                      are identical with or without collections\n"
    "  --heap-budget=BYTES tenured-generation budget; allocation pressure\n"
    "                      and budget overruns trigger collections\n"
    "  --gc-verify         re-verify the heap after every collection\n"
    "                      (debugging aid; aborts on corruption)\n"
    "\n"
    "Optimization level:\n"
    "  -O0                 disable the source-level optimizer\n"
    "  -O2                 enable it (default)\n"
    "  --cse               also run the 4.3 common-subexpression phase\n"
    "\n"
    "Per-phase ablations (mirror driver::CompilerOptions):\n"
    "  --no-substitute --no-if-distribute --no-constant-fold\n"
    "  --no-assoc-commut --no-identity-elim --no-redundant-test\n"
    "  --no-machine-trig --no-dead-code --no-registers\n"
    "  --no-register-temps --no-rep-analysis --no-pdl-numbers\n"
    "  --no-special-cache --no-tail-calls\n"
    "\n"
    "Observability:\n"
    "  --time-phases       print the per-phase timing report\n"
    "  --stats[=json]      print the statistics registry (text or JSON)\n"
    "  --remarks=FILE      write optimization remarks as JSON to FILE\n"
    "                      (\"-\" writes to stdout)\n"
    "  --transcript        print the paper-style ;**** rewrite transcript\n"
    "\n"
    "  --help              this text\n";

struct CliOptions {
  std::vector<std::string> Files;
  driver::CompilerOptions Compiler;
  /// The raw compiler-option tokens (-O0, --cse, --no-*), kept so
  /// --server can forward them verbatim in the request's options field.
  std::vector<std::string> CompilerFlags;
  std::string Server; ///< unix-socket path; empty compiles locally
  bool Listing = false;
  bool Run = false;
  bool Interp = false;
  vm::Engine Engine = vm::Engine::Threaded;
  std::string Entry = "main";
  bool TimePhases = false;
  bool Stats = false;
  bool StatsJson = false;
  std::string RemarksFile; ///< empty: none; "-": stdout
  bool Transcript = false;
  uint64_t GcEvery = 0;   ///< 0 = never collect (grow-only, the default)
  uint64_t HeapBudget = 0; ///< tenured budget in bytes; 0 = unbounded
  bool GcVerify = false;
};

bool parseUnsignedArg(const char *Text, const char *Flag, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0') {
    fprintf(stderr, "s1lispc: %s needs a non-negative integer\n", Flag);
    return false;
  }
  Out = V;
  return true;
}

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

/// Parses argv; returns false (after printing a message) on bad usage.
bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0) {
      fputs(UsageText, stdout);
      std::exit(0);
    } else if (std::strcmp(A, "--listing") == 0) {
      O.Listing = true;
    } else if (std::strcmp(A, "--run") == 0) {
      O.Run = true;
    } else if (startsWith(A, "--run=")) {
      O.Run = true;
      O.Entry = A + 6;
    } else if (std::strcmp(A, "--interp") == 0) {
      O.Interp = true;
    } else if (startsWith(A, "--interp=")) {
      O.Interp = true;
      O.Entry = A + 9;
    } else if (startsWith(A, "--engine=")) {
      auto E = vm::engineByName(A + 9);
      if (!E) {
        fprintf(stderr,
                "s1lispc: unknown engine '%s' (expected legacy, threaded, or "
                "native)\n",
                A + 9);
        return false;
      }
      O.Engine = *E;
      // Also route through the shared flag table so --server forwards the
      // engine exactly like every other compiler flag.
      if (driver::applyCompilerFlag(A, O.Compiler))
        O.CompilerFlags.push_back(A);
    } else if (startsWith(A, "--server=")) {
      O.Server = A + 9;
      if (O.Server.empty()) {
        fprintf(stderr, "s1lispc: --server needs a socket path\n");
        return false;
      }
    } else if (std::strcmp(A, "--time-phases") == 0) {
      O.TimePhases = true;
    } else if (std::strcmp(A, "--stats") == 0) {
      O.Stats = true;
    } else if (std::strcmp(A, "--stats=json") == 0) {
      O.Stats = O.StatsJson = true;
    } else if (startsWith(A, "--remarks=")) {
      O.RemarksFile = A + 10;
      if (O.RemarksFile.empty()) {
        fprintf(stderr, "s1lispc: --remarks needs a file name (or -)\n");
        return false;
      }
    } else if (std::strcmp(A, "--transcript") == 0) {
      O.Transcript = true;
    } else if (startsWith(A, "--gc-every=")) {
      if (!parseUnsignedArg(A + 11, "--gc-every", O.GcEvery))
        return false;
    } else if (startsWith(A, "--heap-budget=")) {
      if (!parseUnsignedArg(A + 14, "--heap-budget", O.HeapBudget))
        return false;
    } else if (std::strcmp(A, "--gc-verify") == 0) {
      O.GcVerify = true;
    } else if (A[0] == '-' && A[1] != '\0') {
      // -O0/-O2/--cse and every --no-* ablation go through the shared
      // table (driver/Ablation.h), which is also what the compile
      // service's options field accepts.
      if (driver::applyCompilerFlag(A, O.Compiler)) {
        O.CompilerFlags.push_back(A);
      } else {
        fprintf(stderr, "s1lispc: unknown option '%s' (try --help)\n", A);
        return false;
      }
    } else {
      O.Files.push_back(A);
    }
  }
  if (O.Files.empty()) {
    fprintf(stderr, "s1lispc: no input files (try --help)\n");
    return false;
  }
  if (O.Run && O.Interp) {
    fprintf(stderr, "s1lispc: --run and --interp are mutually exclusive\n");
    return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool writeFileOrStdout(const std::string &Path, const std::string &Content) {
  if (Path == "-") {
    fputs(Content.c_str(), stdout);
    if (!Content.empty() && Content.back() != '\n')
      fputc('\n', stdout);
    return true;
  }
  std::ofstream OutF(Path, std::ios::binary | std::ios::trunc);
  if (!OutF)
    return false;
  OutF << Content << '\n';
  return OutF.good();
}

int runOnSimulator(ir::Module &M, const s1::Program &P, const CliOptions &O) {
  vm::Machine VM(P, M.Syms, M.DataHeap);
  VM.setEngine(O.Engine);
  VM.setGcEvery(O.GcEvery);
  VM.setGcBudget(O.HeapBudget);
  if (P.indexOf(O.Entry) < 0) {
    fprintf(stderr, "s1lispc: entry function '%s' is not defined", O.Entry.c_str());
    fprintf(stderr, P.Functions.empty() ? "\n" : "; available:");
    for (const s1::AsmFunction &F : P.Functions)
      fprintf(stderr, " %s", F.Name.c_str());
    if (!P.Functions.empty())
      fputc('\n', stderr);
    return 1;
  }
  auto R = VM.call(O.Entry, {});
  if (O.Stats)
    VM.publishStats();
  if (!VM.output().empty())
    fputs(VM.output().c_str(), stdout);
  if (!R.Ok) {
    fprintf(stderr, "s1lispc: runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  printf("=> %s\n", R.Result ? sexpr::toString(*R.Result).c_str()
                             : "#<unprintable>");
  return 0;
}

/// The --server path: forward the compile to a running s1lispd and print
/// the response exactly as the local pipeline would have.
int runViaServer(const std::string &Source, const CliOptions &O) {
  service::Client C;
  std::string Err;
  if (!C.connectUnix(O.Server, &Err)) {
    fprintf(stderr, "s1lispc: %s\n", Err.c_str());
    return 1;
  }
  service::Message Req;
  Req.set("cmd", "compile");
  Req.set("source", Source);
  std::string Flags;
  for (const std::string &F : O.CompilerFlags) {
    if (!Flags.empty())
      Flags += ' ';
    Flags += F;
  }
  Req.set("options", Flags);
  if (O.Run || O.Interp) {
    Req.set("entry", O.Entry);
    Req.set("run", O.Interp ? "interp" : "vm");
    if (O.Run)
      Req.set("engine", vm::engineName(O.Engine));
  }
  if (O.Listing)
    Req.set("listing", "1");
  if (O.Transcript)
    Req.set("transcript", "1");
  if (!O.RemarksFile.empty())
    Req.set("remarks", "1");
  if (O.Stats)
    Req.set("stats", O.StatsJson ? "json" : "text");
  if (O.TimePhases)
    Req.set("timing", "1");

  service::Message Resp;
  if (!C.roundTrip(Req, Resp, &Err)) {
    fprintf(stderr, "s1lispc: %s\n", Err.c_str());
    return 1;
  }
  if (Resp.getOr("ok") != "1") {
    fprintf(stderr, "s1lispc: %s\n",
            Resp.getOr("error", "server error").c_str());
    return 1;
  }

  // Mirror the local output order: transcript, remarks, listing, run
  // output/value, timing, stats.
  if (O.Transcript)
    fputs(Resp.getOr("transcript").c_str(), stdout);
  if (!O.RemarksFile.empty() &&
      !writeFileOrStdout(O.RemarksFile, Resp.getOr("remarks"))) {
    fprintf(stderr, "s1lispc: cannot write '%s'\n", O.RemarksFile.c_str());
    return 1;
  }
  if (O.Listing)
    fputs(Resp.getOr("listing").c_str(), stdout);

  int Status = 0;
  if (O.Run || O.Interp) {
    fputs(Resp.getOr("output").c_str(), stdout);
    if (const std::string *RunErr = Resp.get("run-error")) {
      fprintf(stderr, "s1lispc: runtime error: %s\n", RunErr->c_str());
      Status = 1;
    } else {
      printf("=> %s\n", Resp.getOr("value").c_str());
    }
  }

  if (O.TimePhases)
    fputs(Resp.getOr("timing").c_str(), stdout);
  if (O.Stats)
    fputs(Resp.getOr("stats").c_str(), stdout);
  if (O.StatsJson)
    fputc('\n', stdout);
  return Status;
}

int runOnInterpreter(ir::Module &M, const CliOptions &O) {
  if (!M.lookup(O.Entry)) {
    fprintf(stderr, "s1lispc: entry function '%s' is not defined\n",
            O.Entry.c_str());
    return 1;
  }
  interp::Interpreter I(M);
  I.setGcEvery(O.GcEvery);
  I.setHeapBudget(O.HeapBudget);
  I.setGcVerify(O.GcVerify);
  auto R = I.call(O.Entry, {});
  if (!I.output().empty())
    fputs(I.output().c_str(), stdout);
  if (!R.Ok) {
    fprintf(stderr, "s1lispc: runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  printf("=> %s\n", R.Value.str().c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O))
    return 2;

  stats::setEnabled(O.Stats);
  stats::setTimingEnabled(O.TimePhases);

  std::string Source;
  for (const std::string &Path : O.Files) {
    std::string Text;
    if (!readFile(Path, Text)) {
      fprintf(stderr, "s1lispc: cannot read '%s'\n", Path.c_str());
      return 1;
    }
    Source += Text;
    Source += '\n';
  }

  if (!O.Server.empty())
    return runViaServer(Source, O);

  ir::Module M;
  stats::RemarkStream Remarks;
  bool WantRemarks = !O.RemarksFile.empty() || O.Transcript;
  auto Out = driver::compileSource(M, Source, O.Compiler,
                                   WantRemarks ? &Remarks : nullptr);
  if (!Out.Ok) {
    fprintf(stderr, "s1lispc: %s\n", Out.Error.c_str());
    return 1;
  }

  if (O.Transcript)
    fputs(Remarks.str().c_str(), stdout);
  if (!O.RemarksFile.empty() &&
      !writeFileOrStdout(O.RemarksFile, Remarks.json())) {
    fprintf(stderr, "s1lispc: cannot write '%s'\n", O.RemarksFile.c_str());
    return 1;
  }
  if (O.Listing)
    fputs(driver::listing(Out.Program).c_str(), stdout);

  int Status = 0;
  if (O.Run)
    Status = runOnSimulator(M, Out.Program, O);
  else if (O.Interp)
    Status = runOnInterpreter(M, O);

  if (O.TimePhases)
    fputs(stats::reportPhaseTimes().c_str(), stdout);
  if (O.Stats)
    fputs((O.StatsJson ? stats::reportStatsJson() : stats::reportStats()).c_str(),
          stdout);
  if (O.StatsJson)
    fputc('\n', stdout);
  return Status;
}
