//===- tools/s1lisp-fuzz.cpp - Differential compiler fuzzer ---------------===//
//
// Generates seeded random programs over the whole accepted language, runs
// each on an argument grid through the interpreter and through the
// compiler at every point of the ablation matrix, and reports any
// divergence. With --reduce, a diverging program is shrunk by the
// delta-debugging reducer to a minimal failing form and written out as a
// runnable repro file.
//
//===----------------------------------------------------------------------===//

#include "frontend/Convert.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "interp/Interp.h"
#include "service/Client.h"
#include "sexpr/Printer.h"
#include "vm/Machine.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace s1lisp;

namespace {

const char *UsageText =
    "usage: s1lisp-fuzz [options]\n"
    "\n"
    "Differential fuzzing of the compiler against the interpreter: every\n"
    "generated program runs on its argument grid through the interpreter\n"
    "(the semantic reference) and through the compiled pipeline at every\n"
    "configuration of the ablation matrix. Printed values must match\n"
    "exactly; error outcomes must agree by class.\n"
    "\n"
    "Fuzzing:\n"
    "  --seed=N            first seed (default 1); seeds count up from here\n"
    "  --budget=N          number of seeded programs to run (default 100)\n"
    "  --weights=SPEC      grammar weight overrides, e.g. do=20,listops=0\n"
    "                      (names: arith if let let* cond case andor\n"
    "                      whenunless progn setq do listops float call)\n"
    "  --depth=N           expression nesting budget (default 4)\n"
    "  --size=N            compound-form budget per program (default 40)\n"
    "  --helpers=N         helper defuns per program (default 2)\n"
    "  --no-floats         fixnum-only programs\n"
    "\n"
    "Oracle:\n"
    "  --config=NAME       test one ablation configuration instead of all\n"
    "  --list-configs      print the ablation matrix names and exit\n"
    "  --stats             attach a src/stats counter delta to divergences\n"
    "                      (forces --jobs=1: deltas snapshot one registry)\n"
    "  --jobs=N            worker threads fanning out over the ablation\n"
    "                      matrix (default 1 = serial)\n"
    "  --engine=E          simulator dispatch engine for the compiled side:\n"
    "                      \"threaded\" (default), \"native\" (template JIT;\n"
    "                      x86-64 only, falls back to threaded elsewhere)\n"
    "                      or \"legacy\"\n"
    "  --gc-every=N        force both sides to collect their runtime heaps\n"
    "                      every N allocations (0 = never, the default);\n"
    "                      interpreter runs re-verify the heap after each\n"
    "                      collection, and results must not change\n"
    "  --server=SOCKET     client/soak mode: compile and run every grid\n"
    "                      point through a running s1lispd instead of\n"
    "                      in-process. Each request is sent twice, so the\n"
    "                      second answer comes from the daemon's compile\n"
    "                      cache; cached and fresh responses must be\n"
    "                      identical, and both must agree with the local\n"
    "                      interpreter reference by the usual tolerances.\n"
    "                      (--reduce/--fault/--stats don't apply here.)\n"
    "\n"
    "Reduction:\n"
    "  --reduce            shrink each diverging program to a minimal\n"
    "                      failing form and write a runnable repro file\n"
    "  --out=DIR           directory for repro files (default \".\")\n"
    "\n"
    "Self-test:\n"
    "  --fault=fold        deliberately mis-fold constant fixnum additions\n"
    "                      in every optimizing configuration, so the whole\n"
    "                      find-and-reduce path can be demonstrated\n"
    "\n"
    "  --help              this text\n"
    "\n"
    "Exit status: 0 when every program agreed, 1 on any divergence.\n";

struct CliOptions {
  uint32_t Seed = 1;
  unsigned Budget = 100;
  fuzz::GenOptions Gen;
  std::string Config;
  bool ListConfigs = false;
  bool Stats = false;
  unsigned Jobs = 1;
  vm::Engine Engine = vm::Engine::Threaded;
  unsigned GcEvery = 0;
  std::string Server; ///< unix-socket path; empty fuzzes in-process
  bool Reduce = false;
  std::string OutDir = ".";
  bool FaultFold = false;
};

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

bool parseUnsigned(const char *S, unsigned &Out) {
  unsigned V = 0;
  if (!*S)
    return false;
  for (; *S; ++S) {
    if (*S < '0' || *S > '9')
      return false;
    V = V * 10 + static_cast<unsigned>(*S - '0');
  }
  Out = V;
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    unsigned N = 0;
    if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0) {
      fputs(UsageText, stdout);
      std::exit(0);
    } else if (startsWith(A, "--seed=") && parseUnsigned(A + 7, N)) {
      O.Seed = N;
    } else if (startsWith(A, "--budget=") && parseUnsigned(A + 9, N)) {
      O.Budget = N;
    } else if (startsWith(A, "--weights=")) {
      if (!fuzz::applyWeightOverride(O.Gen.W, A + 10)) {
        fprintf(stderr, "s1lisp-fuzz: bad weight spec '%s'\n", A + 10);
        return false;
      }
    } else if (startsWith(A, "--depth=") && parseUnsigned(A + 8, N)) {
      O.Gen.MaxDepth = N;
    } else if (startsWith(A, "--size=") && parseUnsigned(A + 7, N)) {
      O.Gen.SizeBudget = N;
    } else if (startsWith(A, "--helpers=") && parseUnsigned(A + 10, N)) {
      O.Gen.Helpers = N;
    } else if (std::strcmp(A, "--no-floats") == 0) {
      O.Gen.Floats = false;
    } else if (startsWith(A, "--config=")) {
      O.Config = A + 9;
    } else if (std::strcmp(A, "--list-configs") == 0) {
      O.ListConfigs = true;
    } else if (std::strcmp(A, "--stats") == 0) {
      O.Stats = true;
    } else if (startsWith(A, "--jobs=") && parseUnsigned(A + 7, N)) {
      O.Jobs = N;
    } else if (startsWith(A, "--engine=")) {
      auto E = vm::engineByName(A + 9);
      if (!E) {
        fprintf(stderr,
                "s1lisp-fuzz: unknown engine '%s' (expected legacy, threaded, "
                "or native)\n",
                A + 9);
        return false;
      }
      O.Engine = *E;
    } else if (startsWith(A, "--gc-every=") && parseUnsigned(A + 11, N)) {
      O.GcEvery = N;
    } else if (startsWith(A, "--server=")) {
      O.Server = A + 9;
    } else if (std::strcmp(A, "--reduce") == 0) {
      O.Reduce = true;
    } else if (startsWith(A, "--out=")) {
      O.OutDir = A + 6;
    } else if (std::strcmp(A, "--fault=fold") == 0) {
      O.FaultFold = true;
    } else {
      fprintf(stderr, "s1lisp-fuzz: unknown option '%s'\n%s", A, UsageText);
      return false;
    }
  }
  return true;
}

const char *outcomeText(const fuzz::Outcome &Oc) {
  switch (Oc.K) {
  case fuzz::Outcome::Kind::Value:
    return "value";
  case fuzz::Outcome::Kind::Error:
    return "error";
  case fuzz::Outcome::Kind::CompileError:
    return "compile error";
  }
  return "?";
}

void printDivergence(uint32_t Seed, const fuzz::Divergence &D,
                     const fuzz::GeneratedProgram &P) {
  fprintf(stderr, "seed %u: DIVERGENCE against %s on args", Seed,
          D.Config.c_str());
  if (D.ArgIndex < P.ArgGrid.size())
    for (sexpr::Value A : P.ArgGrid[D.ArgIndex])
      fprintf(stderr, " %s", sexpr::toString(A).c_str());
  fprintf(stderr, "\n  reference: %s %s\n  actual:    %s %s\n",
          outcomeText(D.Reference), D.Reference.Text.c_str(),
          outcomeText(D.Actual), D.Actual.Text.c_str());
}

//===--- client/soak mode -------------------------------------------------===//

/// The s1lispc flag string for one ablation-matrix configuration: the
/// matrix names are the flag names with O2 the empty default.
std::string configFlags(const std::string &Name) {
  if (Name == "O2")
    return "";
  if (Name == "O0")
    return "-O0";
  if (Name == "O2+cse")
    return "--cse";
  return "--" + Name;
}

fuzz::Outcome outcomeOf(const service::Message &Resp) {
  if (Resp.getOr("ok") != "1")
    return fuzz::Outcome::compileError(Resp.getOr("error"));
  if (const std::string *E = Resp.get("run-error"))
    return fuzz::Outcome::error(*E);
  return fuzz::Outcome::value(Resp.getOr("value"));
}

/// The fixnum-width / fuel taint, as in the in-process oracle.
bool tainted(const fuzz::Outcome &O) {
  return O.EC == fuzz::ErrorClass::Overflow || O.EC == fuzz::ErrorClass::Fuel;
}

/// The observable surface of a run response; cached and fresh answers
/// must match on it byte for byte.
std::string responseKey(const service::Message &M) {
  std::string K;
  for (const char *F : {"ok", "error", "value", "run-error", "output"}) {
    K += M.getOr(F);
    K += '\x1f';
  }
  return K;
}

/// Fuzzes a running daemon: every grid point becomes a zero-argument
/// wrapper defun (so the argument row travels inside the source), sent
/// twice — the repeat answers from the compile cache — and both answers
/// are checked against the local interpreter reference.
int runServerMode(const CliOptions &Cli,
                  const std::vector<driver::AblationConfig> &Matrix) {
  service::Client C;
  std::string Err;
  if (!C.connectUnix(Cli.Server, &Err)) {
    fprintf(stderr, "s1lisp-fuzz: %s\n", Err.c_str());
    return 2;
  }
  unsigned Diverged = 0, ConvertErrors = 0, Rows = 0, TolOverflow = 0,
           TolElision = 0, CacheMismatch = 0;
  for (unsigned I = 0; I < Cli.Budget; ++I) {
    uint32_t Seed = Cli.Seed + I;
    fuzz::Generator G(Seed, Cli.Gen);
    fuzz::GeneratedProgram P = G.generate();
    for (size_t Row = 0; Row < P.ArgGrid.size(); ++Row) {
      std::string Wrapped = P.Source;
      Wrapped += "\n(defun __client_main () (" + P.Entry;
      for (sexpr::Value A : P.ArgGrid[Row])
        Wrapped += " (quote " + sexpr::toString(A) + ")";
      Wrapped += "))\n";

      // The reference: the unoptimized interpreter over the same wrapped
      // source, locally.
      ir::Module RefM;
      DiagEngine Diags;
      if (!frontend::convertSource(RefM, Wrapped, Diags)) {
        ++ConvertErrors;
        fprintf(stderr, "seed %u: generated program failed to convert:\n%s\n",
                Seed, Diags.str().c_str());
        break;
      }
      interp::Interpreter Interp(RefM);
      Interp.setFuel(2'000'000);
      auto RR = Interp.call("__client_main", {});
      fuzz::Outcome Ref = RR.Ok ? fuzz::Outcome::value(RR.Value.str())
                                : fuzz::Outcome::error(RR.Error);

      for (const driver::AblationConfig &Cfg : Matrix) {
        service::Message Req;
        Req.set("cmd", "compile");
        Req.set("source", Wrapped);
        Req.set("options", configFlags(Cfg.Name));
        Req.set("entry", "__client_main");
        Req.set("run", "vm");
        Req.set("engine", vm::engineName(Cli.Engine));
        Req.set("fuel", "20000000");
        service::Message R1, R2;
        if (!C.roundTrip(Req, R1, &Err) || !C.roundTrip(Req, R2, &Err)) {
          fprintf(stderr, "s1lisp-fuzz: %s\n", Err.c_str());
          return 2;
        }
        if (responseKey(R1) != responseKey(R2)) {
          ++CacheMismatch;
          fprintf(stderr,
                  "seed %u: cached response differs from fresh against %s\n",
                  Seed, Cfg.Name.c_str());
        }
        ++Rows;
        fuzz::Outcome Act = outcomeOf(R1);
        if (tainted(Ref) || tainted(Act)) {
          ++TolOverflow;
          continue;
        }
        if (Ref.K == fuzz::Outcome::Kind::Error &&
            Act.K == fuzz::Outcome::Kind::Value && Cfg.Opts.Optimize) {
          ++TolElision;
          continue;
        }
        bool Agree = false;
        if (Ref.K == fuzz::Outcome::Kind::Value &&
            Act.K == fuzz::Outcome::Kind::Value)
          Agree = Ref.Text == Act.Text;
        else if (Ref.K == fuzz::Outcome::Kind::Error &&
                 Act.K == fuzz::Outcome::Kind::Error)
          Agree = Ref.EC == Act.EC;
        if (!Agree) {
          ++Diverged;
          fuzz::Divergence D{Cfg.Name, Row, Ref, Act, ""};
          printDivergence(Seed, D, P);
        }
      }
    }
  }
  printf("s1lisp-fuzz: %u programs, %u configs, %u rows compared, "
         "%u divergent, %u convert errors, %u tolerated overflows, "
         "%u tolerated elisions, %u cached-vs-fresh mismatches\n",
         Cli.Budget, static_cast<unsigned>(Matrix.size()), Rows, Diverged,
         ConvertErrors, TolOverflow, TolElision, CacheMismatch);
  return (Diverged || ConvertErrors || CacheMismatch) ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli))
    return 2;

  std::vector<driver::AblationConfig> Matrix = driver::ablationMatrix();
  if (Cli.ListConfigs) {
    for (const driver::AblationConfig &C : Matrix)
      printf("%s\n", C.Name.c_str());
    return 0;
  }
  if (!Cli.Config.empty()) {
    auto C = driver::ablationByName(Cli.Config);
    if (!C) {
      fprintf(stderr, "s1lisp-fuzz: unknown config '%s' (--list-configs)\n",
              Cli.Config.c_str());
      return 2;
    }
    Matrix = {*C};
  }
  if (Cli.FaultFold)
    for (driver::AblationConfig &C : Matrix)
      if (C.Opts.Optimize)
        C.Opts.Opt.FaultConstantFold = true;

  if (!Cli.Server.empty())
    return runServerMode(Cli, Matrix);

  fuzz::OracleOptions Oracle;
  Oracle.Configs = Matrix;
  Oracle.CaptureStats = Cli.Stats;
  Oracle.Jobs = Cli.Jobs;
  Oracle.Engine = Cli.Engine;
  Oracle.GcEvery = Cli.GcEvery;

  unsigned Diverged = 0, ConvertErrors = 0, Rows = 0, TolOverflow = 0,
           TolElision = 0, Reduced = 0;
  for (unsigned I = 0; I < Cli.Budget; ++I) {
    uint32_t Seed = Cli.Seed + I;
    fuzz::Generator G(Seed, Cli.Gen);
    fuzz::GeneratedProgram P = G.generate();
    fuzz::CheckResult R = fuzz::checkProgram(P, Oracle);
    Rows += R.RowsCompared;
    TolOverflow += R.ToleratedOverflows;
    TolElision += R.ToleratedElisions;
    if (R.St == fuzz::CheckResult::Status::ConvertError) {
      ++ConvertErrors;
      fprintf(stderr, "seed %u: generated program failed to convert:\n%s\n",
              Seed, R.ConvertMessage.c_str());
      continue;
    }
    if (R.St != fuzz::CheckResult::Status::Diverged)
      continue;
    ++Diverged;
    const fuzz::Divergence &D = R.Divergences.front();
    printDivergence(Seed, D, P);
    if (!Cli.Reduce)
      continue;
    const driver::AblationConfig *Offender = nullptr;
    for (const driver::AblationConfig &C : Matrix)
      if (C.Name == D.Config)
        Offender = &C;
    if (!Offender)
      continue;
    fuzz::ReduceOptions RO;
    RO.Oracle = Oracle;
    auto Min = fuzz::reduceDivergence(P, D, *Offender, RO);
    if (!Min) {
      fprintf(stderr, "seed %u: divergence did not reproduce for reduction\n",
              Seed);
      continue;
    }
    std::error_code Ec;
    std::filesystem::create_directories(Cli.OutDir, Ec);
    std::string Path =
        Cli.OutDir + "/repro-seed" + std::to_string(Seed) + "-" + D.Config +
        ".lisp";
    if (fuzz::writeRepro(Path, *Min, Seed)) {
      ++Reduced;
      fprintf(stderr,
              "seed %u: reduced to %u forms in %u checks -> %s\n", Seed,
              Min->Forms, Min->Checks, Path.c_str());
    } else {
      fprintf(stderr, "seed %u: could not write repro to %s\n", Seed,
              Path.c_str());
    }
  }

  printf("s1lisp-fuzz: %u programs, %u configs, %u rows compared, "
         "%u divergent, %u convert errors, %u tolerated overflows, "
         "%u tolerated elisions, %u repros written\n",
         Cli.Budget, static_cast<unsigned>(Matrix.size()), Rows, Diverged,
         ConvertErrors, TolOverflow, TolElision, Reduced);
  return (Diverged || ConvertErrors) ? 1 : 0;
}
