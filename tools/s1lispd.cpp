//===- tools/s1lispd.cpp - The S1LISP compile-service daemon --------------===//
//
// A long-running compile server: accepts concurrent compile/run requests
// over the length-prefixed protocol on a unix socket (or stdin/stdout
// with --stdio), dispatches them on a worker pool, and memoizes
// per-function compilation in a content-addressed cache so repeated and
// overlapping workloads skip the middle end. Clients: s1lispc
// --server=SOCKET, s1lisp-fuzz --server=SOCKET, or anything speaking
// service/Protocol.h.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace s1lisp;

namespace {

const char *UsageText =
    "usage: s1lispd --socket=PATH [options]\n"
    "       s1lispd --stdio [options]\n"
    "\n"
    "Runs the S1LISP compile service: clients submit sources over the\n"
    "length-prefixed protocol and receive values, listings, remarks, or\n"
    "stats (the s1lispc surface); per-function compilation is memoized\n"
    "in a content-addressed cache shared across requests. Run requests\n"
    "pick their simulator dispatch engine per request: pass\n"
    "\"--engine=<legacy|threaded|native>\" in the options field (the\n"
    "dedicated \"engine\" key overrides it); compiled output is\n"
    "byte-identical across engines, so cache entries are shared.\n"
    "\n"
    "  --socket=PATH       listen on a unix-domain socket at PATH\n"
    "  --stdio             serve frames from stdin to stdout instead\n"
    "                      (single request stream; for tests and pipes)\n"
    "  --workers=N         accept-loop worker threads (default: hardware\n"
    "                      concurrency)\n"
    "  --cache-max-mb=N    compilation-cache byte budget (default 256)\n"
    "  --fuel=N            default simulator fuel for run requests that\n"
    "                      don't set their own (0 = simulator default)\n"
    "  --help              this text\n";

bool startsWith(const char *Arg, const char *Prefix) {
  return std::strncmp(Arg, Prefix, std::strlen(Prefix)) == 0;
}

bool parseU64(const char *S, uint64_t &Out) {
  if (!*S)
    return false;
  uint64_t V = 0;
  for (; *S; ++S) {
    if (*S < '0' || *S > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(*S - '0');
  }
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  service::ServerOptions Opts;
  bool Stdio = false;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    uint64_t N = 0;
    if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0) {
      fputs(UsageText, stdout);
      return 0;
    } else if (startsWith(A, "--socket=")) {
      Opts.SocketPath = A + 9;
    } else if (std::strcmp(A, "--stdio") == 0) {
      Stdio = true;
    } else if (startsWith(A, "--workers=") && parseU64(A + 10, N)) {
      Opts.Workers = static_cast<unsigned>(N);
    } else if (startsWith(A, "--cache-max-mb=") && parseU64(A + 15, N)) {
      Opts.CacheMaxBytes = static_cast<size_t>(N) << 20;
    } else if (startsWith(A, "--fuel=") && parseU64(A + 7, N)) {
      Opts.VmFuel = N;
    } else {
      fprintf(stderr, "s1lispd: unknown option '%s' (try --help)\n", A);
      return 2;
    }
  }
  if (Stdio != Opts.SocketPath.empty()) {
    fprintf(stderr, "s1lispd: need exactly one of --socket=PATH or --stdio\n");
    return 2;
  }

  service::Server Srv(Opts);
  if (Stdio)
    return Srv.serveStdio();
  std::string Err;
  if (!Srv.serveUnixSocket(&Err)) {
    fprintf(stderr, "s1lispd: %s\n", Err.c_str());
    return 1;
  }
  return 0;
}
